//! The discrete-event traffic simulator.
//!
//! # Event model
//!
//! A calendar-queue event core ([`crate::engine::EventQueue`]) advances
//! simulated time (`now: f64` seconds; ties broken by a monotone
//! push-order sequence number, so replays are bit-stable — the same
//! contract the original binary heap kept, proptested against it in
//! `engine/queue.rs`). In-flight request state lives in a
//! [`crate::engine::Slab`] arena and events carry 4-byte handles;
//! arrivals are pre-generated in per-tenant batches
//! ([`crate::engine::ArrivalSource`]) — the inner loop performs no heap
//! allocation in steady state. Seven event kinds drive the simulation:
//!
//! - **`Arrival`** — a tenant's request arrives. It is offered to the
//!   configured [`crate::sched::SchedPolicy`] (refusals — shared queue
//!   full, or a per-tenant quota exhausted — are dropped and counted per
//!   tenant, never silently lost) and schedules the tenant's next arrival
//!   while offered load remains.
//! - **`IngestDone`** (pipelined mode only) — a request's graph-delta
//!   upload finished on a board's DMA engine. The request enters the
//!   fabric if it is idle, otherwise parks in the board's staging buffer.
//! - **`FabricDone`** (pipelined mode only) — a board's fabric finished
//!   preprocessing a request. The subgraph hand-off queues for the DMA
//!   engine, and any staged request acquires the fabric immediately.
//! - **`MigrationDone`** — the outbound switch leg of a cross-board
//!   migration finished: the **source** board's DMA engine stops reading
//!   the graph out of its DRAM and frees (in pipelined mode it
//!   immediately drains any waiting hand-off). The destination side needs
//!   no event of its own — the migration is just an ingest whose transfer
//!   time prices the switch leg plus any host top-up, so the existing
//!   `IngestDone`/`ServiceDone` flow completes it.
//! - **`ServiceDone`** — a request completed (in serial mode: the whole
//!   reconfig + upload + preprocess + hand-off interval; in pipelined
//!   mode: the hand-off transfer). Latency is recorded and the board slot
//!   frees.
//! - **`DeadlineExpired`** (deadline-carrying tenants, pipelined mode) —
//!   a dispatched request's deadline passed while a pipeline stage it
//!   needs had not started: its staging-buffer or hand-off slot is
//!   abandoned and the board capacity frees immediately.
//! - **`HedgeWon`** ([`HedgeKind::Latency`] only) — the faster leg of a
//!   hedged dispatch completed; the losing board's engines free without
//!   counting a completion.
//!
//! # The request deadline lifecycle
//!
//! [`crate::tenant::TenantSpec::deadline_secs`] (per tenant, with
//! [`ServeConfig::default_deadline_secs`] as the pool-wide fallback)
//! models client abandonment. With any deadline configured the lifecycle
//! gains three cut points, each strictly *after* the deadline instant
//! (completing or dispatching exactly at the deadline still counts):
//!
//! 1. **In-queue expiry** — at every event the scheduler drops queued
//!    requests whose deadline has passed
//!    ([`crate::sched::SchedPolicy::expire`]); they count as
//!    [`RequestOutcome::ExpiredInQueue`] and cost no board work.
//! 2. **Stage abort** (pipelined mode) — a dispatched request still
//!    waiting in a staging buffer or hand-off queue past its deadline is
//!    abandoned ([`RequestOutcome::Aborted`]), releasing the slot; a
//!    *started* stage — an in-flight ingest, a running fabric pass, a
//!    paid reconfiguration — always runs to completion.
//! 3. **Served late** — a completion strictly past its deadline counts
//!    as [`RequestOutcome::ServedLate`]: throughput, but not goodput,
//!    and its whole board visit lands in the wasted-work ledger.
//!
//! **Hedged dispatch** ([`ServeConfig::hedge`], serial mode) reuses the
//! shared [`crate::sched::LatencyPredictor`]: once a dispatched request's
//! queue wait exceeds `factor ×` its tenant's predicted p99, the request
//! is priced on a second free board as well — host ingest onto that
//! board's *current* bitstream, no reconfiguration — and the faster leg
//! wins (ties keep the placement pick). The loser's board stays occupied
//! until the winner completes (a started reconfiguration still drains)
//! and then frees via `HedgeWon`; the cancelled leg counts as
//! [`RequestOutcome::HedgeLoser`] and its work is wasted. Only the
//! winner's completion fills the result cache.
//!
//! With no deadline anywhere and hedging off, **none** of these code
//! paths run: the schedule, every golden trace digest and every CI
//! baseline row reproduce bit-for-bit (the deadline Off-equivalence
//! invariant, proptested in `tests/serve_traffic.rs`).
//!
//! # Cross-board migration
//!
//! With [`ServeConfig::migrate`] enabled, a migration is an **ingest
//! whose source is a peer board's DRAM**: when a request lands on a board
//! where its tenant's graph is not resident and some peer still holds a
//! copy (with an idle DMA engine), the warm prefix crosses the PCIe
//! switch at peer-to-peer bandwidth
//! ([`agnn_hw::shell::PcieSwitchModel`]) and only growth the peer never
//! saw re-crosses the host link. The transfer is priced on **both**
//! boards' DMA resources — the destination's for the whole ingest, the
//! source's for the switch leg (released by `MigrationDone`) — and
//! pipelines behind each fabric like any other ingest.
//! [`MigratePolicy::PeerRehydrate`] enables exactly that rehydration
//! path; [`MigratePolicy::SplitHot`] additionally lets the front request
//! claim an idle board (a `Placement::Migrating` outcome) once every
//! affine board is busy and the queue outgrows a threshold, so a hot
//! tenant splits across boards instead of serializing on one.
//! [`MigratePolicy::Off`] never consults peers and reproduces the
//! pre-migration schedules bit-for-bit.
//!
//! # The two board slots
//!
//! Every [`BoardPool`] board exposes two in-flight slots mirroring the
//! VPK180 shell's independent engines: the **DMA slot** (PCIe — at most
//! one transfer in flight, an ingest or a subgraph hand-off) and the
//! **fabric slot** (UPE + SCR — at most one request preprocessing;
//! reconfiguration stalls are charged here, at fabric acquisition).
//!
//! With [`ServeConfig::overlap`] **off** (the default), a dispatched
//! request holds both slots for its whole staged timeline — stages run
//! back to back, exactly the monolithic `AutoGnn::serve` lifecycle.
//!
//! With `overlap` **on**, the slots are scheduled independently: a board
//! admits the next request's ingest as soon as its DMA engine frees, so a
//! graph delta lands in the second staging buffer
//! ([`agnn_hw::shell::DELTA_BUFFERS`]) while the previous batch occupies
//! the fabric, and the finished subgraph streams out under the next
//! request's preprocessing. The admission queue and the dispatch/placement
//! policies are untouched — only the meaning of "board free" narrows from
//! "fully idle" to "can accept an ingest".
//!
//! # The scheduler seam
//!
//! The admission/dispatch core lives behind [`crate::sched::SchedPolicy`]
//! ([`ServeConfig::scheduler`] picks the implementation). The event loop
//! delegates exactly three decisions to it:
//!
//! 1. **Admission** — an `Arrival` calls `admit`; a refusal is the drop
//!    path (counted against the arriving tenant).
//! 2. **Offer order** — each dispatch pass calls `scan` and hands the
//!    ordered view to placement (`select_dispatch`) and the
//!    [`DispatchPolicy`]; the chosen *scan position* is then removed with
//!    `take`. Under [`crate::sched::SchedKind::Fifo`] the scan order is
//!    arrival order, so placement/dispatch see exactly the pre-refactor
//!    queue; under weighted fair queueing the order is the deficit-round-
//!    robin fair schedule — placement reads the scheduler's preference as
//!    a hint and the dispatch policy may still batch around it (the
//!    scheduler charges the picked tenant's deficit).
//! 3. **Reconfiguration gating** — before a board pays an ICAP stall
//!    (serial dispatch, or fabric acquisition in pipelined mode), the
//!    loop asks `allow_reconfig`; [`crate::sched::SloAware`] closes that
//!    gate while the tenant's predicted p99 clears its SLO budget.
//!    Completions feed back through `on_complete`.
//!
//! **The Fifo-equivalence invariant:** with the default
//! [`crate::sched::SchedKind::Fifo`] every one of those calls maps
//! one-to-one onto the old baked-in `VecDeque` operation (admit =
//! bounded `push_back`, scan = the queue itself, take = `remove`,
//! `allow_reconfig` = always) — so every golden trace digest from PR 1–4
//! reproduces bit-for-bit, and the CI perf baselines survive the
//! refactor unchanged. `tests/serve_traffic.rs` pins this.
//!
//! # Why a 1-board serial pool is the PR 1 simulator
//!
//! In serial mode the two slots are held and released together, so a
//! single-board pool performs exactly the PR 1 sequence of
//! dispatch/complete events with identical prices — the same schedule,
//! latencies and trace digest bit-for-bit (pinned in
//! `tests/serve_traffic.rs`). Perf numbers therefore stay comparable
//! across the whole trajectory, which is what the CI `bench-smoke` gate
//! relies on.
//!
//! # Tracing
//!
//! [`TrafficSim::run_traced`] narrates the run into a
//! [`crate::trace::TraceSink`] as complete spans — the simulator is
//! analytic, so a stage's begin and end are both known when it is
//! scheduled. The span model (one track per board resource, a queue
//! track, counters for queue depth and residency) lives in
//! [`crate::trace`]; the emission sites here are:
//!
//! - **dispatch** — the request's queue span (arrival → dispatch), a
//!   fresh per-run request id, and in serial mode the whole back-to-back
//!   reconfig/ingest/preprocess/hand-off timeline at once;
//! - **fabric acquisition** (pipelined) — the ICAP stall and
//!   preprocessing spans;
//! - **hand-off start** (pipelined) — the DMA hand-off span;
//! - **migration dispatch** — the source board's outbound DMA leg;
//! - **admission/dispatch queue transitions** — queue-depth counter
//!   samples; dispatch also samples the board's resident DRAM bytes.
//!
//! Sinks are write-only, so tracing cannot perturb the schedule: a run
//! with any sink produces bit-for-bit the [`crate::trace::NullSink`]
//! report and the pinned golden digests (the digest-equivalence
//! invariant, proptested in `tests/serve_traffic.rs`). [`TrafficSim::run`]
//! itself measures the event loop — wall-clock seconds and events
//! processed land in [`TrafficReport::sim`] for the CI sim-speed gate.
//!
//! Every per-request price — upload delta, preprocessing, hand-off,
//! reconfiguration stall, inference tail — comes from the same models
//! `AutoGnn::serve` uses, via the analytic staged path
//! ([`BoardPool::service_secs`]), so the simulator replays hundreds of
//! thousands of requests in milliseconds.

use std::collections::VecDeque;
use std::time::Instant;

use agnn_cost::{CostModel, ReconfigPolicy, Workload};
use agnn_gnn::timing::GpuInferenceModel;
use agnn_hw::HwConfig;
use fxhash::FxHashMap;

use crate::cache::{CacheKind, ResultCache, CACHE_LOOKUP_SECS};
use crate::engine::{ArrivalSource, EventQueue, Handle, Slab};
use crate::metrics::{
    CompletedRequest, DepthTimeline, LatencyHistogram, RequestLatency, RequestOutcome, SimPerf,
    StageHistograms, StallBreakdown, TenantStats, TrafficReport,
};
use crate::pool::{BoardPool, MigratePolicy, PlacementPolicy};
use crate::sched::{LatencyPredictor, Request, SchedKind, SchedPolicy, Scheduler};
use crate::tenant::TenantSpec;
use crate::trace::{
    BoardResource, CounterKind, CounterSample, NullSink, Span, SpanKind, TraceSink, Track,
};

/// How the scheduler picks the next request and pays reconfigurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Strict arrival order; the runtime's per-request threshold policy
    /// decides reconfigurations — interleaved tenants with different
    /// optimal bitstreams thrash the ICAP.
    Fifo,
    /// Serves queued requests whose optimal bitstream matches the one
    /// currently programmed first (in arrival order), switching only when
    /// none match — amortizing each `ReconfigEvent` over a whole batch. A
    /// starvation guard dispatches the front request once it has waited
    /// `max_queue_delay_secs`.
    ReconfigAware {
        /// Longest a request may be overtaken before it is served anyway.
        max_queue_delay_secs: f64,
    },
}

impl DispatchPolicy {
    /// The reconfig-aware policy with a 30-second starvation guard.
    pub fn reconfig_aware() -> Self {
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs: 30.0,
        }
    }
}

/// When (if ever) a long-waiting request is hedged onto a second board.
/// Gated exactly like [`CacheKind`] / [`MigratePolicy`]:
/// [`HedgeKind::Off`] is the default and reproduces the unhedged
/// schedules bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum HedgeKind {
    /// Never hedge. The golden-digest default.
    #[default]
    Off,
    /// Once a dispatched request's queue wait exceeds `factor ×` its
    /// tenant's predicted p99 latency (the shared
    /// [`LatencyPredictor`] EWMA; a cold tenant never triggers), price
    /// the request on a second free board too and keep the faster leg.
    /// Requires a ≥2-board pool and serial mode — [`ServeConfigBuilder`]
    /// rejects anything else.
    Latency {
        /// Hedge-trigger multiple of the predicted p99 (must be positive
        /// and finite).
        factor: f64,
    },
}

impl HedgeKind {
    /// The latency-hedging preset: a second leg once the wait exceeds
    /// 1× the predicted p99.
    pub fn latency() -> Self {
        HedgeKind::Latency { factor: 1.0 }
    }

    /// `true` unless hedging is [`HedgeKind::Off`].
    pub fn enabled(&self) -> bool {
        *self != HedgeKind::Off
    }

    /// Stable lowercase identifier (CLI flags, report rows).
    pub fn name(&self) -> &'static str {
        match self {
            HedgeKind::Off => "off",
            HedgeKind::Latency { .. } => "latency",
        }
    }
}

/// Why a [`ServeConfigBuilder::build`] call rejected its configuration.
/// Every variant names an incompatibility the simulator cannot run (the
/// documented combos below), so the builder surfaces it at construction
/// instead of a mid-run panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Hedged dispatch re-offers a request to a *second* board; a pool
    /// of fewer than two boards has nowhere to hedge to.
    HedgeNeedsPool {
        /// The configured board count.
        boards: usize,
    },
    /// Hedged dispatch prices whole serial board visits and cancels the
    /// slower one; the pipelined lifecycle splits a visit across
    /// independently scheduled stage events, where a leg cannot be
    /// atomically cancelled. Hedging therefore requires `overlap: false`.
    HedgeNeedsSerial,
    /// A deadline must be a positive, finite number of seconds.
    NonPositiveDeadline {
        /// The rejected value.
        secs: f64,
    },
    /// A hedge trigger factor must be a positive, finite multiple.
    NonPositiveHedgeFactor {
        /// The rejected value.
        factor: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::HedgeNeedsPool { boards } => write!(
                f,
                "hedged dispatch needs at least 2 boards to re-offer to (got {boards})"
            ),
            ConfigError::HedgeNeedsSerial => write!(
                f,
                "hedged dispatch requires serial mode (overlap: false): a pipelined \
                 leg cannot be cancelled atomically"
            ),
            ConfigError::NonPositiveDeadline { secs } => {
                write!(f, "deadline must be positive and finite, got {secs}")
            }
            ConfigError::NonPositiveHedgeFactor { factor } => {
                write!(f, "hedge factor must be positive and finite, got {factor}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Deployment seed: drives every arrival stream.
    pub seed: u64,
    /// Admission-queue capacity; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Dispatch policy (which queued request a board serves next).
    pub policy: DispatchPolicy,
    /// Admission/dispatch scheduler: the bounded FIFO queue
    /// ([`SchedKind::Fifo`], bit-for-bit the pre-refactor schedules),
    /// weighted fair queueing with per-tenant quotas
    /// ([`SchedKind::WeightedFair`]), or SLO-driven reconfiguration
    /// gating ([`SchedKind::SloAware`]).
    pub scheduler: SchedKind,
    /// Number of simulated boards in the pool.
    pub boards: usize,
    /// Placement policy (which board an admitted request runs on).
    pub placement: PlacementPolicy,
    /// Cross-board migration policy: whether a cold tenant's graph may be
    /// pulled from a peer board's DRAM over the PCIe switch (and whether
    /// a hot tenant may proactively split across boards).
    /// [`MigratePolicy::Off`] reproduces the pre-migration schedules
    /// bit-for-bit.
    pub migrate: MigratePolicy,
    /// Pipeline boards' DMA against fabric compute: ingest the next
    /// request (double-buffered graph deltas) and stream finished
    /// subgraphs out while the fabric preprocesses. `false` replays the
    /// serial staged lifecycle bit-for-bit against the PR 1/PR 2 digests.
    pub overlap: bool,
    /// Per-board compute speed multiplier: preprocessing runs this many
    /// times faster, while ICAP reprogramming and PCIe transfers keep
    /// their physical rates. Models "one board N× as fast" comparisons
    /// against an N-board pool.
    pub compute_speedup: f64,
    /// Offered load: total arrivals generated before the queue drains.
    pub total_requests: u64,
    /// Drift quantization step in simulated seconds (bitstream choices are
    /// re-evaluated once per step per tenant).
    pub drift_step_secs: f64,
    /// Minimum predicted relative gain before a reconfiguration is paid.
    pub min_gain: f64,
    /// Queue-depth timeline decimation stride.
    pub depth_stride: u64,
    /// Keep a per-request completion log in the report (off by default —
    /// costs memory proportional to the trace).
    pub log_requests: bool,
    /// Result-cache policy ([`crate::cache`]): cached subgraph results
    /// are served at lookup cost while fresh (delta-driven invalidation)
    /// and duplicate in-flight requests coalesce. [`CacheKind::Off`]
    /// (the default) reproduces the uncached schedules bit-for-bit.
    pub cache: CacheKind,
    /// Pool-wide fallback client-abandonment deadline, in seconds from
    /// arrival, for tenants whose
    /// [`crate::tenant::TenantSpec::deadline_secs`] is `None`. With this
    /// `None` too (the default) and no per-tenant deadline, every
    /// deadline code path is disabled and the pre-deadline schedules
    /// replay bit-for-bit.
    pub default_deadline_secs: Option<f64>,
    /// Hedged-dispatch policy (see the [module docs](self)).
    /// [`HedgeKind::Off`] (the default) reproduces the unhedged
    /// schedules bit-for-bit.
    pub hedge: HedgeKind,
}

impl ServeConfig {
    /// Every knob at its deployment default — the single source of truth
    /// for field defaults. `Default` and the named presets all delegate
    /// here, so a new knob cannot silently diverge between constructors.
    ///
    /// ```
    /// use agnn_serve::{DispatchPolicy, ServeConfig};
    ///
    /// let base = ServeConfig::base();
    /// assert_eq!(base, ServeConfig::default());
    /// assert_eq!(base.policy, DispatchPolicy::Fifo);
    /// assert!(!base.overlap);
    ///
    /// // Presets are deltas on `base()`, so struct update syntax composes
    /// // with them without losing the shared defaults.
    /// let custom = ServeConfig { boards: 4, ..ServeConfig::base() };
    /// assert_eq!(custom.queue_capacity, base.queue_capacity);
    /// ```
    pub fn base() -> Self {
        ServeConfig {
            seed: 0,
            queue_capacity: 256,
            policy: DispatchPolicy::Fifo,
            scheduler: SchedKind::Fifo,
            boards: 1,
            placement: PlacementPolicy::LeastLoaded,
            migrate: MigratePolicy::Off,
            overlap: false,
            compute_speedup: 1.0,
            total_requests: 10_000,
            drift_step_secs: 3_600.0,
            min_gain: 0.10,
            depth_stride: 64,
            log_requests: false,
            cache: CacheKind::Off,
            default_deadline_secs: None,
            hedge: HedgeKind::Off,
        }
    }

    /// A [`ServeConfigBuilder`] seeded with [`base`](Self::base) — the
    /// preferred way to assemble a configuration: typed setters plus a
    /// validating [`build`](ServeConfigBuilder::build) that rejects
    /// incompatible knob combinations with a [`ConfigError`] instead of
    /// a mid-run panic.
    ///
    /// ```
    /// use agnn_serve::{HedgeKind, SchedKind, ServeConfig};
    ///
    /// let cfg = ServeConfig::builder()
    ///     .boards(2)
    ///     .scheduler(SchedKind::weighted_fair())
    ///     .default_deadline_secs(2.0)
    ///     .hedge(HedgeKind::latency())
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.boards, 2);
    /// assert_eq!(cfg.default_deadline_secs, Some(2.0));
    ///
    /// // Incompatible combos come back as typed errors: hedging needs
    /// // a second board to re-offer to.
    /// let err = ServeConfig::builder().hedge(HedgeKind::latency()).build();
    /// assert!(err.is_err());
    /// ```
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: Self::base() }
    }

    /// A [`ServeConfigBuilder`] seeded with this configuration — the
    /// migration path for call sites that used struct-update syntax on a
    /// preset (`ServeConfig { seed: 7, ..ServeConfig::pipelined() }`
    /// becomes `ServeConfig::pipelined().to_builder().seed(7).build()`).
    ///
    /// ```
    /// use agnn_serve::ServeConfig;
    ///
    /// let cfg = ServeConfig::pipelined().to_builder().seed(7).build().unwrap();
    /// assert_eq!(cfg.seed, 7);
    /// assert_eq!(ServeConfig { seed: 0, ..cfg }, ServeConfig::pipelined());
    /// ```
    pub fn to_builder(self) -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: self }
    }

    /// Checks the documented incompatible knob combinations (the same
    /// rules [`ServeConfigBuilder::build`] enforces);
    /// [`TrafficSim::new`] re-checks so a hand-assembled struct literal
    /// cannot smuggle an invalid combo past the builder.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(secs) = self.default_deadline_secs {
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(ConfigError::NonPositiveDeadline { secs });
            }
        }
        if let HedgeKind::Latency { factor } = self.hedge {
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(ConfigError::NonPositiveHedgeFactor { factor });
            }
            if self.overlap {
                return Err(ConfigError::HedgeNeedsSerial);
            }
            if self.boards < 2 {
                return Err(ConfigError::HedgeNeedsPool {
                    boards: self.boards,
                });
            }
        }
        Ok(())
    }

    /// The reconfig-aware deployment preset (30-second starvation guard).
    ///
    /// ```
    /// use agnn_serve::{DispatchPolicy, ServeConfig};
    ///
    /// let cfg = ServeConfig::reconfig_aware();
    /// assert_eq!(cfg.policy, DispatchPolicy::reconfig_aware());
    /// // Dispatch policy is the *only* departure from `base()`.
    /// assert_eq!(
    ///     ServeConfig { policy: DispatchPolicy::Fifo, ..cfg },
    ///     ServeConfig::base(),
    /// );
    /// ```
    pub fn reconfig_aware() -> Self {
        Self::builder()
            .policy(DispatchPolicy::reconfig_aware())
            .build()
            .expect("preset is valid")
    }

    /// The pipelined preset: reconfig-aware dispatch with DMA/fabric
    /// overlap enabled.
    ///
    /// ```
    /// use agnn_serve::ServeConfig;
    ///
    /// let cfg = ServeConfig::pipelined();
    /// assert!(cfg.overlap);
    /// assert_eq!(ServeConfig { overlap: false, ..cfg }, ServeConfig::reconfig_aware());
    /// ```
    pub fn pipelined() -> Self {
        Self::reconfig_aware()
            .to_builder()
            .overlap(true)
            .build()
            .expect("preset is valid")
    }

    /// The weighted-fair preset: deficit-round-robin per-tenant queues
    /// with the default quota ([`SchedKind::weighted_fair`]) over the
    /// pipelined lifecycle, dispatched in **strict scan order**
    /// ([`DispatchPolicy::Fifo`]). Strict order is deliberate: the fair
    /// schedule *is* the scan order, and reconfig-aware batching would
    /// override it — letting a board serve the aggressor's matching
    /// bitstream for up to its starvation guard while victims wait, which
    /// is exactly the isolation WFQ exists to provide.
    ///
    /// ```
    /// use agnn_serve::{DispatchPolicy, SchedKind, ServeConfig};
    ///
    /// let cfg = ServeConfig::weighted_fair();
    /// assert_eq!(cfg.scheduler, SchedKind::weighted_fair());
    /// assert_eq!(cfg.policy, DispatchPolicy::Fifo); // strict scan order
    /// assert!(cfg.overlap); // rides on the pipelined lifecycle
    /// ```
    pub fn weighted_fair() -> Self {
        Self::pipelined()
            .to_builder()
            .scheduler(SchedKind::weighted_fair())
            .policy(DispatchPolicy::Fifo)
            .build()
            .expect("preset is valid")
    }

    /// The SLO-aware preset: FIFO-order queueing whose reconfigurations
    /// are gated on predicted p99 vs the tenants' SLO budgets
    /// ([`SchedKind::slo_aware`]), on top of the pipelined deployment.
    ///
    /// ```
    /// use agnn_serve::{SchedKind, ServeConfig};
    ///
    /// let cfg = ServeConfig::slo_aware();
    /// assert_eq!(cfg.scheduler, SchedKind::slo_aware());
    /// assert_eq!(ServeConfig { scheduler: SchedKind::Fifo, ..cfg }, ServeConfig::pipelined());
    /// ```
    pub fn slo_aware() -> Self {
        Self::pipelined()
            .to_builder()
            .scheduler(SchedKind::slo_aware())
            .build()
            .expect("preset is valid")
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// Fluent, validating constructor for [`ServeConfig`] — obtained from
/// [`ServeConfig::builder`] (seeded with the deployment defaults) or
/// [`ServeConfig::to_builder`] (seeded with an existing configuration,
/// typically a preset). Every setter is typed after its field;
/// [`build`](Self::build) runs [`ServeConfig::validate`] and returns a
/// [`ConfigError`] for the documented incompatible combinations, so a
/// bad configuration fails at construction rather than mid-run.
///
/// Struct-literal construction (`ServeConfig { .. }`) remains available
/// for backward compatibility — the fields are public and every golden
/// digest was pinned through it — but new call sites should prefer the
/// builder (see `docs/ARCHITECTURE.md`, "the ServeConfig builder").
#[derive(Debug, Clone, Copy)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.cfg.$name = $name;
            self
        }
    };
}

impl ServeConfigBuilder {
    builder_setter!(
        /// Deployment seed ([`ServeConfig::seed`]).
        seed: u64
    );
    builder_setter!(
        /// Admission-queue capacity ([`ServeConfig::queue_capacity`]).
        queue_capacity: usize
    );
    builder_setter!(
        /// Dispatch policy ([`ServeConfig::policy`]).
        policy: DispatchPolicy
    );
    builder_setter!(
        /// Admission/dispatch scheduler ([`ServeConfig::scheduler`]).
        scheduler: SchedKind
    );
    builder_setter!(
        /// Board-pool size ([`ServeConfig::boards`]).
        boards: usize
    );
    builder_setter!(
        /// Placement policy ([`ServeConfig::placement`]).
        placement: PlacementPolicy
    );
    builder_setter!(
        /// Cross-board migration policy ([`ServeConfig::migrate`]).
        migrate: MigratePolicy
    );
    builder_setter!(
        /// DMA/fabric pipelining ([`ServeConfig::overlap`]).
        overlap: bool
    );
    builder_setter!(
        /// Per-board compute multiplier ([`ServeConfig::compute_speedup`]).
        compute_speedup: f64
    );
    builder_setter!(
        /// Offered load ([`ServeConfig::total_requests`]).
        total_requests: u64
    );
    builder_setter!(
        /// Drift quantization step ([`ServeConfig::drift_step_secs`]).
        drift_step_secs: f64
    );
    builder_setter!(
        /// Reconfiguration gain threshold ([`ServeConfig::min_gain`]).
        min_gain: f64
    );
    builder_setter!(
        /// Queue-depth decimation stride ([`ServeConfig::depth_stride`]).
        depth_stride: u64
    );
    builder_setter!(
        /// Per-request completion log ([`ServeConfig::log_requests`]).
        log_requests: bool
    );
    builder_setter!(
        /// Result-cache policy ([`ServeConfig::cache`]).
        cache: CacheKind
    );
    builder_setter!(
        /// Hedged-dispatch policy ([`ServeConfig::hedge`]).
        hedge: HedgeKind
    );

    /// Pool-wide fallback deadline in seconds
    /// ([`ServeConfig::default_deadline_secs`]). The builder default is
    /// no deadline; call this to opt in.
    pub fn default_deadline_secs(mut self, secs: f64) -> Self {
        self.cfg.default_deadline_secs = Some(secs);
        self
    }

    /// [`Self::default_deadline_secs`] taking the `Option` directly —
    /// `None` clears the fallback. For parameterized sweeps that toggle
    /// deadlines per run.
    pub fn maybe_deadline(mut self, secs: Option<f64>) -> Self {
        self.cfg.default_deadline_secs = secs;
        self
    }

    /// Validates and returns the configuration. Errors on the documented
    /// incompatible combinations ([`ConfigError`]): hedging on fewer
    /// than two boards or under pipelining, and non-positive deadlines
    /// or hedge factors.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A dispatched request flowing through a board's staged pipeline
/// (pipelined mode only); the timestamps accumulate as stages complete.
#[derive(Debug, Clone, Copy)]
struct Pipelined {
    tenant: usize,
    /// Per-run monotone request id linking this request's trace spans.
    trace_id: u64,
    arrival_secs: f64,
    dispatch_secs: f64,
    workload: Workload,
    best: HwConfig,
    /// Hand-off bytes and inference seconds, memoized at dispatch (pure
    /// in the dispatch-time workload) so the hand-off stage prices the
    /// transfer without re-running the neighborhood-expansion model.
    subgraph_bytes: u64,
    inference_secs: f64,
    upload_secs: f64,
    ingest_done_secs: f64,
    fabric_start_secs: f64,
    fabric_done_secs: f64,
    reconfig_secs: f64,
    preprocess_secs: f64,
    host_bytes: u64,
    switch_bytes: u64,
    /// Cache bookkeeping, all inert when the run's cache is `Off`:
    /// drift bucket / graph size / delta-counter snapshot at dispatch
    /// (the entry this completion will fill), the preprocessing cost the
    /// entry records, and whether this board visit is a partial hit
    /// (fabric pass skipped against a fresh entry).
    bucket: u64,
    graph_bytes: u64,
    cum_delta: u64,
    entry_preprocess_secs: f64,
    partial: bool,
}

/// Queued event payloads. Kept pointer-small on purpose: the completion
/// record (a [`RequestLatency`] plus byte counters, ~100 bytes) lives in
/// a [`Slab`] and `ServiceDone` carries its 4-byte handle, so a queue
/// entry is a couple of words and bucket sorts move almost nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A request of `tenant` arrives.
    Arrival { tenant: usize },
    /// Board `board` finished a graph-delta ingest (pipelined mode).
    IngestDone { board: usize },
    /// Board `board`'s fabric finished preprocessing (pipelined mode).
    FabricDone { board: usize },
    /// Board `board`'s **outbound** switch leg of a migration finished:
    /// its DMA engine stops reading the graph out of DRAM and frees.
    MigrationDone { board: usize },
    /// A request completed; the [`Completion`] record is in the slab.
    ServiceDone { completion: Handle },
    /// A dispatched request's deadline passed (pipelined mode): abort it
    /// if a stage it needs has not started — it still waits in board
    /// `board`'s staging buffer or hand-off queue. `tag` is the
    /// request's trace id: slab slots recycle (the arena is not
    /// generational), so an event whose handle is vacant or holds a
    /// different request by pop time must not fire.
    DeadlineExpired {
        board: usize,
        handle: Handle,
        tag: u64,
    },
    /// The faster leg of `tenant`'s hedged dispatch completed (and any
    /// reconfiguration the losing leg started has drained): board
    /// `board`'s engines — held by the cancelled leg — free without
    /// counting a completion.
    HedgeWon { board: usize, tenant: usize },
}

/// The deferred payload of a `ServiceDone` event, slab-resident between
/// the completion's scheduling and its pop.
#[derive(Debug, Clone, Copy)]
struct Completion {
    tenant: usize,
    board: usize,
    arrival_secs: f64,
    latency: RequestLatency,
    host_bytes: u64,
    switch_bytes: u64,
    /// Cache bookkeeping (inert when the run's cache is `Off`): the
    /// drift bucket / graph size / delta-counter snapshot taken at
    /// dispatch — the entry this completion fills — plus the
    /// preprocessing cost the entry records.
    bucket: u64,
    graph_bytes: u64,
    cum_delta: u64,
    entry_preprocess_secs: f64,
    /// Served from the cache at admission (full hit or coalesced): the
    /// request held no board slot, so completion frees nothing and fills
    /// nothing.
    cached: bool,
}

/// FNV-1a accumulator for the order-sensitive event-trace digest.
#[derive(Debug, Clone, Copy)]
struct TraceDigest(u64);

impl TraceDigest {
    fn new() -> Self {
        TraceDigest(0xCBF2_9CE4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        let mut h = self.0;
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// The multi-tenant traffic simulator over a board pool.
#[derive(Debug)]
pub struct TrafficSim {
    tenants: Vec<TenantSpec>,
    config: ServeConfig,
    pool: BoardPool,
}

/// Mutable tallies shared by the serial and pipelined completion paths.
struct RunStats {
    tenants: Vec<TenantStats>,
    /// Per-tenant SLO budgets ([`TenantSpec::slo_secs`]); violations are
    /// counted here, independent of the scheduler in force.
    slo: Vec<Option<f64>>,
    /// Per-tenant effective deadlines ([`TenantSpec::deadline_secs`]
    /// with [`ServeConfig::default_deadline_secs`] as the fallback);
    /// completions strictly past them count as served-late, not goodput.
    deadlines: Vec<Option<f64>>,
    /// The wasted-work ledger: bytes moved and board seconds spent on
    /// work no client waited for (aborted stages, hedge-loser legs,
    /// past-deadline completions).
    wasted_work_bytes: u64,
    wasted_secs: f64,
    stages: StageHistograms,
    requests: Vec<CompletedRequest>,
    /// Aggregate stall attribution over completed requests (each
    /// request's six components sum to its end-to-end latency).
    stall: StallBreakdown,
    reconfigs: u64,
    reconfig_secs: f64,
    overlap_secs: f64,
    last_board_free: f64,
}

impl RunStats {
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        tenant: usize,
        arrival_secs: f64,
        latency: RequestLatency,
        host_bytes: u64,
        switch_bytes: u64,
        log: bool,
    ) -> RequestOutcome {
        let budget = self.slo[tenant];
        // Strictly past the deadline only: completing at the exact
        // instant is still goodput (the same boundary in-queue expiry
        // uses).
        let late = self.deadlines[tenant].is_some_and(|d| latency.total() > d);
        let outcome = if late {
            RequestOutcome::ServedLate
        } else {
            RequestOutcome::Served
        };
        let t = &mut self.tenants[tenant];
        t.completed += 1;
        t.outcomes.record(outcome);
        t.latency.record(latency.total());
        if !late {
            t.goodput_latency.record(latency.total());
        }
        t.queue_wait.record(latency.queue_secs);
        if budget.is_some_and(|budget| latency.total() > budget) {
            t.slo_violations += 1;
        }
        t.board_secs += latency.board_secs();
        if late {
            // A completion the client abandoned is pure wasted work:
            // the whole board visit and every byte it moved.
            self.wasted_secs += latency.board_secs();
            self.wasted_work_bytes += host_bytes + switch_bytes;
        }
        self.stages.record(&latency);
        self.stall.accumulate(&StallBreakdown::of(&latency));
        if log {
            self.requests.push(CompletedRequest {
                tenant,
                arrival_secs,
                latency,
                host_bytes,
                switch_bytes,
                outcome,
            });
        }
        outcome
    }
}

/// Per-board pipeline state (pipelined mode only): [`Slab`] handles of
/// the [`Pipelined`] requests currently ingesting / staged /
/// preprocessing and the hand-offs waiting for the DMA engine — the
/// payloads stay put in the arena while 4-byte handles move through the
/// queues. Slot occupancy and busy horizons live on the [`BoardPool`]
/// boards themselves — the pool's `stage`/`unstage` and
/// `add_pending_handoffs` counters mirror these queues' lengths.
struct Pipeline {
    ingesting: Vec<Option<Handle>>,
    /// FIFO of ingested requests waiting for the fabric, at most
    /// [`crate::pool::STAGING_DEPTH`] deep (the pool enforces the bound
    /// at admission).
    staged: Vec<VecDeque<Handle>>,
    in_fabric: Vec<Option<Handle>>,
    handoffs: Vec<VecDeque<Handle>>,
}

impl Pipeline {
    fn new(boards: usize) -> Self {
        Pipeline {
            ingesting: vec![None; boards],
            staged: vec![VecDeque::new(); boards],
            in_fabric: vec![None; boards],
            handoffs: vec![VecDeque::new(); boards],
        }
    }
}

/// The run's engine state: the event queue plus the two slab arenas
/// holding in-flight payloads (pipeline requests and deferred
/// completion records). One struct so the event handlers borrow it as a
/// unit.
struct Engine {
    queue: EventQueue<EventKind>,
    /// Pipelined requests between dispatch and hand-off start.
    inflight: Slab<Pipelined>,
    /// `ServiceDone` payloads between scheduling and their pop.
    completions: Slab<Completion>,
}

impl TrafficSim {
    /// A simulator over `tenants` with `config`. The board pool is built
    /// here (one forked `AutoGnn` runtime per board) and reset at the
    /// start of every [`run`](TrafficSim::run), so one simulator can
    /// replay many deterministic simulations.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, the queue capacity or board count is
    /// zero, the compute speedup or any tenant deadline is not a positive
    /// finite number, or the config fails [`ServeConfig::validate`]
    /// (assembling via [`ServeConfig::builder`] surfaces the same rules
    /// as a typed [`ConfigError`] instead).
    pub fn new(tenants: Vec<TenantSpec>, config: ServeConfig) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.compute_speedup > 0.0 && config.compute_speedup.is_finite(),
            "compute speedup must be positive and finite"
        );
        if let Err(err) = config.validate() {
            panic!("invalid ServeConfig: {err}");
        }
        for tenant in &tenants {
            if let Some(secs) = tenant.deadline_secs {
                assert!(
                    secs > 0.0 && secs.is_finite(),
                    "tenant deadline must be positive and finite, got {secs}"
                );
            }
        }
        let pool = BoardPool::new(
            config.boards,
            tenants[0].params,
            ReconfigPolicy {
                min_gain: config.min_gain,
            },
            tenants.len(),
        );
        TrafficSim {
            tenants,
            config,
            pool,
        }
    }

    /// Number of boards in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.size()
    }

    /// Runs the simulation to completion and reports. Takes `&mut self`
    /// because the pool carries mutable per-board state (bitstreams,
    /// residency, busy slots); the pool is reset first, so repeated runs
    /// of the same simulator are identical.
    ///
    /// This is the fast path: the loop is monomorphized over
    /// [`NullSink`], whose `enabled()` is a constant `false`, so every
    /// span/counter emission compiles out.
    ///
    /// ```
    /// use agnn_graph::datasets::Dataset;
    /// use agnn_serve::sim::{ServeConfig, TrafficSim};
    /// use agnn_serve::tenant::TenantSpec;
    ///
    /// let tenants = vec![TenantSpec::new("feed", Dataset::Movie, 20.0)];
    /// let mut sim = TrafficSim::new(
    ///     tenants,
    ///     ServeConfig {
    ///         total_requests: 200,
    ///         ..ServeConfig::default()
    ///     },
    /// );
    /// let a = sim.run();
    /// let b = sim.run(); // the pool resets: repeated runs are identical
    /// assert_eq!(a.completed() + a.dropped(), 200);
    /// assert_eq!(a.trace_digest, b.trace_digest);
    /// ```
    pub fn run(&mut self) -> TrafficReport {
        self.run_traced_impl(&mut NullSink)
    }

    /// [`run`](TrafficSim::run) with the event loop narrating spans and
    /// counters into `sink` (see the [module docs](self) for the emission
    /// sites). Sinks are write-only, so the report — digest included — is
    /// bit-for-bit the untraced run's.
    ///
    /// ```
    /// use agnn_graph::datasets::Dataset;
    /// use agnn_serve::sim::{ServeConfig, TrafficSim};
    /// use agnn_serve::tenant::TenantSpec;
    /// use agnn_serve::trace::FlightRecorder;
    ///
    /// let tenants = vec![TenantSpec::new("feed", Dataset::Movie, 20.0)];
    /// let cfg = ServeConfig {
    ///     total_requests: 200,
    ///     ..ServeConfig::default()
    /// };
    /// let mut recorder = FlightRecorder::with_capacity(10_000);
    /// let traced = TrafficSim::new(tenants.clone(), cfg).run_traced(&mut recorder);
    /// // The digest-equivalence invariant: tracing never perturbs.
    /// let untraced = TrafficSim::new(tenants, cfg).run();
    /// assert_eq!(traced.trace_digest, untraced.trace_digest);
    /// assert!(recorder.spans().count() > 0);
    /// ```
    pub fn run_traced(&mut self, sink: &mut dyn TraceSink) -> TrafficReport {
        self.run_traced_impl(sink)
    }

    /// The event loop, generic over the sink so [`run`](TrafficSim::run)
    /// monomorphizes tracing away while
    /// [`run_traced`](TrafficSim::run_traced) keeps dynamic sinks.
    fn run_traced_impl<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> TrafficReport {
        let wall_start = Instant::now();
        let cfg = self.config;
        let TrafficSim { tenants, pool, .. } = self;
        pool.reset();
        // Multi-board (or pipelined) runs tag reconfiguration and
        // completion digest words with the board index; the single-board
        // serial layout is frozen so PR 1 digests stay reproducible.
        let tag_boards = pool.size() > 1 || cfg.overlap;
        let pcie = pool.pcie();
        let switch = pool.switch();
        let inference_model = GpuInferenceModel::default();

        // Size the calendar-queue buckets off the offered load: at the
        // tenants' combined peak rate one bucket holds a handful of
        // events. Width only moves constants, never ordering.
        let total_peak: f64 = tenants.iter().map(|t| t.arrival.peak_rate()).sum();
        let width_secs = (1.0 / (4.0 * total_peak)).clamp(1e-6, 1.0);
        let mut engine = Engine {
            queue: EventQueue::with_width(width_secs),
            inflight: Slab::with_capacity(4 * pool.size()),
            completions: Slab::with_capacity(4 * pool.size()),
        };

        // Independent seeded arrival streams, pre-generated in batches
        // (bit-identical to on-demand draws — the streams are
        // schedule-independent); the first arrival of every tenant
        // primes the queue.
        let mut arrivals = ArrivalSource::new(tenants, cfg.seed);
        let mut offered = 0u64;
        for i in 0..tenants.len() {
            if offered < cfg.total_requests {
                let at = arrivals.next(i);
                engine.queue.push(at, EventKind::Arrival { tenant: i });
                offered += 1;
            }
        }

        // The pluggable admission/dispatch scheduler (see the module
        // docs' "scheduler seam"): `Fifo` is the pre-refactor bounded
        // queue bit-for-bit. The enum form keeps the per-event
        // admit/scan/take calls statically dispatched.
        let mut sched = cfg.scheduler.instantiate(tenants, cfg.queue_capacity);
        // Effective per-tenant deadlines: the tenant's own, falling back
        // to the pool-wide default. With every entry `None` the expiry
        // pass, the abort events and the served-late split are all
        // skipped — the deadline Off-equivalence invariant.
        let deadlines: Vec<Option<f64>> = tenants
            .iter()
            .map(|t| t.deadline_secs.or(cfg.default_deadline_secs))
            .collect();
        let deadlines_on = deadlines.iter().any(Option::is_some);
        let hedge_on = cfg.hedge.enabled();
        // The shared latency EWMA driving the hedge trigger (SLO-aware
        // scheduling owns its own instance inside the policy).
        let mut predictor = LatencyPredictor::new(tenants.len());
        // Scratch for the expiry pass, reused across events.
        let mut expired: Vec<Request> = Vec::new();
        // Pure cost-model results (workloads, library-optimal configs,
        // expansion sums, fabric reports, reconfig verdicts), memoized
        // per tenant drift bucket — speed only, never the schedule (see
        // [`CostMemo`]).
        let mut memo = CostMemo::new(tenants.len(), cfg.drift_step_secs);
        // The subgraph result cache ([`crate::cache`]). With `Off` every
        // touch below is skipped, so the uncached schedule — and every
        // golden digest — replays bit-for-bit.
        let mut cache = ResultCache::new(cfg.cache, tenants.len());
        let cache_on = cache.enabled();

        let mut stats = RunStats {
            tenants: tenants
                .iter()
                .map(|t| TenantStats {
                    name: t.name.clone(),
                    latency: LatencyHistogram::default(),
                    ..TenantStats::default()
                })
                .collect(),
            slo: tenants.iter().map(|t| t.slo_secs).collect(),
            deadlines: deadlines.clone(),
            wasted_work_bytes: 0,
            wasted_secs: 0.0,
            stages: StageHistograms::default(),
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            reconfigs: 0,
            reconfig_secs: 0.0,
            overlap_secs: 0.0,
            last_board_free: 0.0,
        };
        let mut depth = DepthTimeline::with_stride(cfg.depth_stride);
        let mut digest = TraceDigest::new();
        let mut pipe = Pipeline::new(pool.size());
        // Self-metrics (events popped, wall clock) and the monotone
        // request id spans carry — none of it feeds back into the
        // schedule.
        let mut events = 0u64;
        let mut next_trace_id = 0u64;

        while let Some((now, kind)) = engine.queue.pop() {
            events += 1;
            if deadlines_on {
                // In-queue expiry: before handling the event, drop every
                // queued request whose deadline has (strictly) passed —
                // it can no longer dispatch, so no board work is wasted
                // on it. Coalesced duplicates parked on an expired
                // primary expire with it: nothing else would ever
                // complete them.
                sched.expire(now, &deadlines, &mut expired);
                if !expired.is_empty() {
                    for rq in expired.drain(..) {
                        stats.tenants[rq.tenant]
                            .outcomes
                            .record(RequestOutcome::ExpiredInQueue);
                        digest.push(0xE1);
                        digest.push(rq.tenant as u64);
                        let trace_id = next_trace_id;
                        next_trace_id += 1;
                        if sink.enabled() {
                            sink.span(Span {
                                track: Track::Queue,
                                kind: SpanKind::Cancelled,
                                tenant: rq.tenant,
                                request: trace_id,
                                begin_secs: rq.arrival_secs,
                                end_secs: now,
                            });
                        }
                        if cache_on {
                            for _waiter in cache.cancel(rq.tenant, rq.arrival_secs) {
                                stats.tenants[rq.tenant]
                                    .outcomes
                                    .record(RequestOutcome::ExpiredInQueue);
                                digest.push(0xE1);
                                digest.push(rq.tenant as u64);
                            }
                        }
                    }
                    depth.record(now, sched.len());
                    if sink.enabled() {
                        sink.counter(CounterSample {
                            kind: CounterKind::QueueDepth,
                            time_secs: now,
                            value: sched.len() as f64,
                        });
                    }
                }
            }
            match kind {
                EventKind::Arrival { tenant } => {
                    digest.push(0xA1);
                    digest.push(tenant as u64);
                    digest.push(now.to_bits());
                    // Keep the tenant's stream flowing while load remains.
                    if offered < cfg.total_requests {
                        let at = arrivals.next(tenant);
                        engine.queue.push(at, EventKind::Arrival { tenant });
                        offered += 1;
                    }
                    // The cache consult, before the request ever queues:
                    // a fresh entry whose graph is still board-resident
                    // completes at lookup cost without a board slot; a
                    // duplicate of an in-flight request parks on that
                    // primary (hit-under-miss).
                    if cache_on {
                        let spec = &tenants[tenant];
                        let bucket = spec.drift_bucket(now, cfg.drift_step_secs);
                        let costs = memo.bucket_costs(tenant, spec, now, &inference_model);
                        cache.observe(tenant, bucket, costs.coo_bytes);
                        let resident = pool.resident_boards(tenant).next().is_some();
                        if cache.full_hit(tenant, bucket, resident).is_some() {
                            stats.tenants[tenant].cache_hits += 1;
                            digest.push(0xCA);
                            digest.push(tenant as u64);
                            if sink.enabled() {
                                let s = cache.stats();
                                sink.counter(CounterSample {
                                    kind: CounterKind::CacheHits,
                                    time_secs: now,
                                    value: (s.hits + s.partial_hits) as f64,
                                });
                            }
                            let latency = RequestLatency {
                                cache_secs: CACHE_LOOKUP_SECS,
                                ..RequestLatency::default()
                            };
                            let completion = engine.completions.insert(Completion {
                                tenant,
                                board: 0,
                                arrival_secs: now,
                                latency,
                                host_bytes: 0,
                                switch_bytes: 0,
                                bucket,
                                graph_bytes: 0,
                                cum_delta: 0,
                                entry_preprocess_secs: 0.0,
                                cached: true,
                            });
                            engine.queue.push(
                                now + CACHE_LOOKUP_SECS,
                                EventKind::ServiceDone { completion },
                            );
                            continue;
                        }
                        if cache.park(tenant, bucket, now) {
                            stats.tenants[tenant].cache_coalesced += 1;
                            digest.push(0xC0);
                            digest.push(tenant as u64);
                            continue;
                        }
                    }
                    // Bounded admission: the scheduler's refusal (shared
                    // queue full, or a per-tenant quota exhausted) is the
                    // drop path — counted, never silently lost.
                    if !sched.admit(Request {
                        tenant,
                        arrival_secs: now,
                    }) {
                        stats.tenants[tenant].dropped += 1;
                        stats.tenants[tenant]
                            .outcomes
                            .record(RequestOutcome::DroppedAtAdmission);
                        digest.push(0xD0);
                        continue;
                    }
                    if cache_on {
                        // Admitted: duplicate arrivals of the same bucket
                        // may now coalesce onto this primary until its
                        // completion fills the cache. (Dropped arrivals
                        // never register, so waiters cannot be orphaned.)
                        let bucket = tenants[tenant].drift_bucket(now, cfg.drift_step_secs);
                        cache.register(tenant, bucket, now);
                    }
                    depth.record(now, sched.len());
                    if sink.enabled() {
                        sink.counter(CounterSample {
                            kind: CounterKind::QueueDepth,
                            time_secs: now,
                            value: sched.len() as f64,
                        });
                    }
                }
                EventKind::IngestDone { board } => {
                    let handle = pipe.ingesting[board]
                        .take()
                        .expect("ingest completion without an ingest in flight");
                    pool.release_dma(board);
                    let rq = engine.inflight.get_mut(handle);
                    rq.ingest_done_secs = now;
                    let tenant = rq.tenant;
                    digest.push(0x16);
                    digest.push(tenant as u64);
                    digest.push(board as u64);
                    if pool.fabric_free(board) && pipe.staged[board].is_empty() {
                        start_fabric(
                            handle,
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &sched,
                            &mut digest,
                            &cfg,
                            sink,
                            &mut engine,
                            &mut memo,
                        );
                    } else {
                        pool.stage(board);
                        pipe.staged[board].push_back(handle);
                    }
                    // The freed DMA engine drains any waiting hand-off.
                    start_handoff(
                        board,
                        now,
                        pool,
                        &mut pipe,
                        &mut stats,
                        &pcie,
                        sink,
                        &mut engine,
                    );
                }
                EventKind::FabricDone { board } => {
                    let handle = pipe.in_fabric[board]
                        .take()
                        .expect("fabric completion without a request in the fabric");
                    pool.release_fabric(board);
                    let rq = engine.inflight.get_mut(handle);
                    rq.fabric_done_secs = now;
                    let tenant = rq.tenant;
                    digest.push(0xFB);
                    digest.push(tenant as u64);
                    digest.push(board as u64);
                    pipe.handoffs[board].push_back(handle);
                    pool.add_pending_handoffs(board, 1);
                    start_handoff(
                        board,
                        now,
                        pool,
                        &mut pipe,
                        &mut stats,
                        &pcie,
                        sink,
                        &mut engine,
                    );
                    // The earliest staged request acquires the fabric
                    // immediately.
                    if let Some(staged) = pipe.staged[board].pop_front() {
                        pool.unstage(board);
                        start_fabric(
                            staged,
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &sched,
                            &mut digest,
                            &cfg,
                            sink,
                            &mut engine,
                            &mut memo,
                        );
                    }
                }
                EventKind::MigrationDone { board } => {
                    // The outbound switch leg finished: the source board's
                    // DMA engine stops streaming the graph out and frees.
                    pool.release_dma(board);
                    digest.push(0x37);
                    digest.push(board as u64);
                    if cfg.overlap {
                        start_handoff(
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &pcie,
                            sink,
                            &mut engine,
                        );
                    }
                }
                EventKind::ServiceDone { completion } => {
                    let Completion {
                        tenant,
                        board,
                        arrival_secs,
                        latency,
                        host_bytes,
                        switch_bytes,
                        bucket,
                        graph_bytes,
                        cum_delta,
                        entry_preprocess_secs,
                        cached,
                    } = engine.completions.remove(completion);
                    let outcome = stats.complete(
                        tenant,
                        arrival_secs,
                        latency,
                        host_bytes,
                        switch_bytes,
                        cfg.log_requests,
                    );
                    // Latency feedback for SLO-aware scheduling, and for
                    // the hedge trigger's shared predictor.
                    sched.on_complete(tenant, &latency, now);
                    if hedge_on {
                        predictor.observe(tenant, latency.total());
                    }
                    if outcome == RequestOutcome::ServedLate && sink.enabled() {
                        sink.counter(CounterSample {
                            kind: CounterKind::WastedWork,
                            time_secs: now,
                            value: stats.wasted_work_bytes as f64,
                        });
                    }
                    digest.push(0x5D);
                    digest.push(tenant as u64);
                    digest.push(latency.total().to_bits());
                    if cached {
                        // A cache-served completion never held a board:
                        // nothing to release, no entry to refill.
                        stats.last_board_free = now;
                        continue;
                    }
                    if tag_boards {
                        digest.push(board as u64);
                    }
                    if cfg.overlap {
                        pool.release_dma(board);
                        pool.complete(board);
                        start_handoff(
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &pcie,
                            sink,
                            &mut engine,
                        );
                    } else {
                        pool.release(board);
                    }
                    stats.last_board_free = now;
                    if cache_on {
                        // Refill the tenant's cache entry from this
                        // board-served completion and drain any arrivals
                        // that coalesced onto it while it was in flight.
                        // The entry's service cost substitutes the *paid*
                        // preprocess share with the entry's own (a partial
                        // hit paid 0 but reuses an entry worth `saved`).
                        let service_secs = latency.board_secs() - latency.preprocess_secs
                            + entry_preprocess_secs
                            + latency.inference_secs;
                        let waiters = cache.fill(
                            tenant,
                            bucket,
                            graph_bytes,
                            cum_delta,
                            entry_preprocess_secs,
                            service_secs,
                            arrival_secs,
                        );
                        for waited_since in waiters {
                            let wl = RequestLatency {
                                cache_secs: now - waited_since,
                                ..RequestLatency::default()
                            };
                            stats.complete(tenant, waited_since, wl, 0, 0, cfg.log_requests);
                            sched.on_complete(tenant, &wl, now);
                            if hedge_on {
                                predictor.observe(tenant, wl.total());
                            }
                            digest.push(0xCE);
                            digest.push(tenant as u64);
                            digest.push(wl.total().to_bits());
                        }
                    }
                }
                EventKind::DeadlineExpired { board, handle, tag } => {
                    // Tag guard against slab recycling: only a live
                    // payload whose trace id matches is still this
                    // request — anything else means it already completed
                    // (or aborted) and the slot moved on.
                    let live = engine
                        .inflight
                        .try_get(handle)
                        .is_some_and(|rq| rq.trace_id == tag);
                    if !live {
                        continue;
                    }
                    // A started stage always runs to completion: only a
                    // request still *waiting* — in the staging buffer
                    // for the fabric, or in the hand-off queue for the
                    // DMA engine — can be abandoned.
                    let staged_pos = pipe.staged[board].iter().position(|&h| h == handle);
                    let handoff_pos = pipe.handoffs[board].iter().position(|&h| h == handle);
                    if staged_pos.is_none() && handoff_pos.is_none() {
                        continue;
                    }
                    if let Some(i) = staged_pos {
                        pipe.staged[board].remove(i).expect("index in bounds");
                        pool.unstage(board);
                    } else if let Some(i) = handoff_pos {
                        pipe.handoffs[board].remove(i).expect("index in bounds");
                        pool.add_pending_handoffs(board, -1);
                    }
                    let rq = engine.inflight.remove(handle);
                    stats.tenants[rq.tenant]
                        .outcomes
                        .record(RequestOutcome::Aborted);
                    // The abort writes off everything the board already
                    // paid: the ingest, plus the reconfiguration and
                    // fabric pass once the hand-off was queued.
                    stats.wasted_secs += rq.upload_secs + rq.reconfig_secs + rq.preprocess_secs;
                    stats.wasted_work_bytes += rq.host_bytes + rq.switch_bytes;
                    digest.push(0xAB);
                    digest.push(rq.tenant as u64);
                    digest.push(board as u64);
                    if sink.enabled() {
                        sink.span(Span {
                            track: Track::Queue,
                            kind: SpanKind::Cancelled,
                            tenant: rq.tenant,
                            request: rq.trace_id,
                            begin_secs: rq.dispatch_secs,
                            end_secs: now,
                        });
                        sink.counter(CounterSample {
                            kind: CounterKind::WastedWork,
                            time_secs: now,
                            value: stats.wasted_work_bytes as f64,
                        });
                    }
                    if cache_on {
                        // The abort orphans the in-flight primary: its
                        // coalesced duplicates expire with it.
                        for _waiter in cache.cancel(rq.tenant, rq.arrival_secs) {
                            stats.tenants[rq.tenant]
                                .outcomes
                                .record(RequestOutcome::ExpiredInQueue);
                            digest.push(0xE1);
                            digest.push(rq.tenant as u64);
                        }
                    }
                    // Fall through to dispatch: the freed staging slot
                    // may let the board accept a queued request.
                }
                EventKind::HedgeWon { board, tenant } => {
                    // The cancelled leg's board frees. Both engines were
                    // held as one serial visit, but `release` would also
                    // count a completion the loser never made.
                    pool.release_dma(board);
                    pool.release_fabric(board);
                    stats.tenants[tenant]
                        .outcomes
                        .record(RequestOutcome::HedgeLoser);
                    digest.push(0x4F);
                    digest.push(tenant as u64);
                    digest.push(board as u64);
                    stats.last_board_free = now;
                }
            }

            // Dispatch while boards are free and work waits. Each pass
            // offers the scheduler's scan order to placement; placement
            // and the dispatch policy pick the (request, board) pair.
            while pool.any_free() && !sched.is_empty() {
                let Some(placement) =
                    select_dispatch(tenants, &cfg, sched.scan(), &mut memo, pool, now)
                else {
                    break;
                };
                let (position, board) = match placement {
                    Placement::Serve { position, board } => (position, board),
                    Placement::Migrating { position, board } => {
                        // SplitHot overflow: the queue outgrew its
                        // threshold with every affine board busy, so the
                        // front request claims an idle board instead.
                        digest.push(0x51);
                        digest.push(board as u64);
                        (position, board)
                    }
                };
                let request = sched.take(position);
                depth.record(now, sched.len());
                // The request id its spans share; the queue span closes
                // here (arrival → dispatch — the admission scheduler's
                // share of the latency, cf. the sched module docs).
                let trace_id = next_trace_id;
                next_trace_id += 1;
                if sink.enabled() {
                    sink.counter(CounterSample {
                        kind: CounterKind::QueueDepth,
                        time_secs: now,
                        value: sched.len() as f64,
                    });
                    sink.span(Span {
                        track: Track::Queue,
                        kind: SpanKind::Queue,
                        tenant: request.tenant,
                        request: trace_id,
                        begin_secs: request.arrival_secs,
                        end_secs: now,
                    });
                }
                let tenant = &tenants[request.tenant];
                let costs = memo.bucket_costs(request.tenant, tenant, now, &inference_model);
                let workload = costs.workload;
                let best = memo.best_config(request.tenant, tenant, now, pool);
                let coo_bytes = costs.coo_bytes;

                // Classify the dispatch against the result cache: a fresh
                // entry lets this request skip preprocessing (partial hit
                // — residency lapsed between arrival and dispatch or the
                // entry landed while this request queued); otherwise it is
                // the miss that will refill the entry at completion.
                let bucket = tenant.drift_bucket(now, cfg.drift_step_secs);
                let (cache_hit_preprocess, cache_cum_delta) = if cache_on {
                    cache.observe(request.tenant, bucket, coo_bytes);
                    let hit = cache.serve_partial(request.tenant, bucket);
                    match hit {
                        Some(saved) => {
                            stats.tenants[request.tenant].cache_partial_hits += 1;
                            digest.push(0xCF);
                            digest.push(request.tenant as u64);
                            digest.push(board as u64);
                            if sink.enabled() {
                                let s = cache.stats();
                                sink.counter(CounterSample {
                                    kind: CounterKind::CacheHits,
                                    time_secs: now,
                                    value: (s.hits + s.partial_hits) as f64,
                                });
                            }
                            (Some(saved), cache.cum_delta(request.tenant))
                        }
                        None => {
                            stats.tenants[request.tenant].cache_misses += 1;
                            (None, cache.cum_delta(request.tenant))
                        }
                    }
                } else {
                    (None, 0)
                };

                // The ingest source: a cold tenant pulls its graph from a
                // peer board's DRAM over the PCIe switch when the policy
                // allows and an idle-DMA peer holds a copy; everything
                // else (warm or no peer) ingests from the host as before.
                let source = if cfg.migrate.pulls_from_peers()
                    && pool.resident_bytes(board, request.tenant) == 0
                {
                    pool.peer_source(request.tenant, board)
                } else {
                    None
                };
                let (host_bytes, switch_bytes, switch_secs) = match source {
                    Some(source) => {
                        let transfer =
                            pool.migrate_ingest(board, source, request.tenant, coo_bytes);
                        let switch_secs = switch.transfer_secs(transfer.switch_bytes);
                        // The outbound leg holds the source board's DMA
                        // engine until `MigrationDone` releases it.
                        pool.occupy_dma(source, now, now + switch_secs);
                        if cfg.overlap && !pool.fabric_free(source) {
                            stats.overlap_secs +=
                                ((now + switch_secs).min(pool.fabric_until(source)) - now).max(0.0);
                        }
                        digest.push(0x39);
                        digest.push(request.tenant as u64);
                        digest.push(board as u64);
                        digest.push(source as u64);
                        if sink.enabled() {
                            sink.span(Span {
                                track: Track::Board {
                                    board: source,
                                    resource: BoardResource::Dma,
                                },
                                kind: SpanKind::MigrateOut,
                                tenant: request.tenant,
                                request: trace_id,
                                begin_secs: now,
                                end_secs: now + switch_secs,
                            });
                        }
                        engine.queue.push(
                            now + switch_secs,
                            EventKind::MigrationDone { board: source },
                        );
                        (transfer.host_bytes, transfer.switch_bytes, switch_secs)
                    }
                    None => (pool.upload_delta(board, request.tenant, coo_bytes), 0, 0.0),
                };
                if sink.enabled() {
                    // Residency moved (upload delta or migrated prefix):
                    // sample the board's DRAM occupancy.
                    sink.counter(CounterSample {
                        kind: CounterKind::ResidentBytes { board },
                        time_secs: now,
                        value: pool.resident_total_bytes(board) as f64,
                    });
                }

                if cfg.overlap {
                    // Pipelined: occupy only the DMA engine; the fabric
                    // (and the reconfiguration decision) waits until the
                    // delta has landed.
                    let upload_secs = switch_secs + pcie.transfer_secs(host_bytes);
                    let done = now + upload_secs;
                    pool.occupy_dma(board, now, done);
                    if !pool.fabric_free(board) {
                        stats.overlap_secs += (done.min(pool.fabric_until(board)) - now).max(0.0);
                    }
                    digest.push(0x1D);
                    digest.push(request.tenant as u64);
                    digest.push(board as u64);
                    if sink.enabled() {
                        sink.span(Span {
                            track: Track::Board {
                                board,
                                resource: BoardResource::Dma,
                            },
                            kind: SpanKind::Ingest,
                            tenant: request.tenant,
                            request: trace_id,
                            begin_secs: now,
                            end_secs: done,
                        });
                    }
                    let handle = engine.inflight.insert(Pipelined {
                        tenant: request.tenant,
                        trace_id,
                        arrival_secs: request.arrival_secs,
                        dispatch_secs: now,
                        workload,
                        best,
                        subgraph_bytes: costs.subgraph_bytes,
                        inference_secs: costs.inference_secs,
                        upload_secs,
                        ingest_done_secs: done,
                        fabric_start_secs: done,
                        fabric_done_secs: done,
                        reconfig_secs: 0.0,
                        preprocess_secs: 0.0,
                        host_bytes,
                        switch_bytes,
                        bucket,
                        graph_bytes: coo_bytes,
                        cum_delta: cache_cum_delta,
                        entry_preprocess_secs: cache_hit_preprocess.unwrap_or(0.0),
                        partial: cache_hit_preprocess.is_some(),
                    });
                    pipe.ingesting[board] = Some(handle);
                    engine.queue.push(done, EventKind::IngestDone { board });
                    if let Some(d) = deadlines[request.tenant] {
                        // Stage-abort alarm: if the request still waits
                        // on an unstarted stage when this pops, its slot
                        // is abandoned. Tagged with the trace id so a
                        // recycled slab slot cannot be mis-aborted.
                        engine.queue.push(
                            request.arrival_secs + d,
                            EventKind::DeadlineExpired {
                                board,
                                handle,
                                tag: trace_id,
                            },
                        );
                    }
                    continue;
                }

                // Serial: the board pays every stage back to back and both
                // slots stay held — the PR 1/PR 2 schedule bit-for-bit.
                // The scheduler may gate the reconfiguration (SLO-aware
                // policies keep a within-budget tenant on the current
                // bitstream); `Fifo` never does.
                let mut stall = 0.0;
                if cache_hit_preprocess.is_none() && sched.allow_reconfig(request.tenant, now) {
                    if let Some(secs) =
                        memo.maybe_reconfigure(request.tenant, &workload, best, pool, board)
                    {
                        stall = secs;
                        stats.reconfigs += 1;
                        stats.reconfig_secs += stall;
                        stats.tenants[request.tenant].reconfigs += 1;
                        digest.push(0x2C);
                        if tag_boards {
                            digest.push(board as u64);
                        }
                    }
                }

                // Price the staged lifecycle analytically under the
                // board's (possibly new) configuration. The ingest leg
                // prices the host bytes; a migration adds its switch leg
                // on top (the peer prefix crossing board-to-board). The
                // decomposition equals [`BoardPool::service_secs`] term
                // for term — the PCIe legs are divisions, the fabric
                // report comes from the memo.
                let upload_secs = switch_secs + pcie.transfer_secs(host_bytes);
                // A partial hit reuses the cached fabric output: the board
                // still ingests the delta and hands the subgraph off, but
                // the preprocessing pass (and any reconfiguration, gated
                // above) is skipped.
                let preprocess_secs = if cache_hit_preprocess.is_some() {
                    0.0
                } else {
                    memo.stage_total(request.tenant, &workload, pool, board) / cfg.compute_speedup
                };
                let download_secs = pcie.transfer_secs(costs.subgraph_bytes);
                let inference_secs = costs.inference_secs;

                let done = now + stall + upload_secs + preprocess_secs + download_secs;

                // Hedged dispatch: once this request's queue wait has
                // outrun the predicted tail, offer it to a second free
                // board too and keep the faster leg (see the module
                // docs). `Off` — the default — skips everything.
                let second = match cfg.hedge {
                    HedgeKind::Latency { factor } => {
                        let wait = now - request.arrival_secs;
                        if predictor.is_warm(request.tenant)
                            && wait > factor * predictor.predicted_p99(request.tenant)
                        {
                            pool.free_indices().find(|&b| b != board)
                        } else {
                            None
                        }
                    }
                    HedgeKind::Off => None,
                };

                // The winning leg, initially the placement pick (leg A).
                let mut win_board = board;
                let mut win_done = done;
                let mut win_latency = RequestLatency {
                    queue_secs: now - request.arrival_secs,
                    reconfig_secs: stall,
                    upload_secs,
                    stage_wait_secs: 0.0,
                    preprocess_secs,
                    download_secs,
                    inference_secs,
                    cache_secs: 0.0,
                };
                let mut win_host_bytes = host_bytes;
                let mut win_switch_bytes = switch_bytes;
                let mut win_entry_preprocess = cache_hit_preprocess.unwrap_or(preprocess_secs);

                if let Some(second) = second {
                    digest.push(0x4E);
                    digest.push(request.tenant as u64);
                    digest.push(second as u64);
                    // The hedge leg ingests from the host onto the
                    // second board's *current* bitstream — no
                    // reconfiguration, no migration: the bet is a cheap
                    // second chance, not a second ICAP switch.
                    let host_b = pool.upload_delta(second, request.tenant, coo_bytes);
                    let upload_b = pcie.transfer_secs(host_b);
                    let preprocess_b = memo.stage_total(request.tenant, &workload, pool, second)
                        / cfg.compute_speedup;
                    let done_b = now + upload_b + preprocess_b + download_secs;
                    // Ties keep the primary — placement picked it.
                    let (loser, loser_free_at, loser_bytes) = if done_b < win_done {
                        // The hedge leg wins. The primary's *started*
                        // reconfiguration still runs to completion, so
                        // its board frees only once both the
                        // cancellation and the ICAP stall have passed.
                        let freed = (
                            win_board,
                            done_b.max(now + stall),
                            win_host_bytes + win_switch_bytes,
                        );
                        win_board = second;
                        win_done = done_b;
                        win_latency = RequestLatency {
                            queue_secs: now - request.arrival_secs,
                            reconfig_secs: 0.0,
                            upload_secs: upload_b,
                            stage_wait_secs: 0.0,
                            preprocess_secs: preprocess_b,
                            download_secs,
                            inference_secs,
                            cache_secs: 0.0,
                        };
                        win_host_bytes = host_b;
                        win_switch_bytes = 0;
                        win_entry_preprocess = preprocess_b;
                        freed
                    } else {
                        (second, win_done, host_b)
                    };
                    stats.wasted_secs += loser_free_at - now;
                    stats.wasted_work_bytes += loser_bytes;
                    pool.occupy(loser, now, loser_free_at);
                    engine.queue.push(
                        loser_free_at,
                        EventKind::HedgeWon {
                            board: loser,
                            tenant: request.tenant,
                        },
                    );
                    if sink.enabled() {
                        sink.span(Span {
                            track: Track::Queue,
                            kind: SpanKind::Cancelled,
                            tenant: request.tenant,
                            request: trace_id,
                            begin_secs: now,
                            end_secs: loser_free_at,
                        });
                        sink.counter(CounterSample {
                            kind: CounterKind::WastedWork,
                            time_secs: loser_free_at,
                            value: stats.wasted_work_bytes as f64,
                        });
                    }
                }

                pool.occupy(win_board, now, win_done);
                if sink.enabled() {
                    // Serial mode runs the stages back to back under both
                    // slots, so the whole timeline is known at dispatch:
                    // ICAP stall, then the DMA ingest, the fabric pass,
                    // and the hand-off closing at `win_done`. Only the
                    // winning leg is narrated; a cancelled hedge leg
                    // appears as one `Cancelled` span above.
                    let span = |resource, kind, begin_secs, end_secs| Span {
                        track: Track::Board {
                            board: win_board,
                            resource,
                        },
                        kind,
                        tenant: request.tenant,
                        request: trace_id,
                        begin_secs,
                        end_secs,
                    };
                    let win_stall = win_latency.reconfig_secs;
                    if win_stall > 0.0 {
                        sink.span(span(
                            BoardResource::Icap,
                            SpanKind::Reconfig,
                            now,
                            now + win_stall,
                        ));
                    }
                    let ingest_start = now + win_stall;
                    sink.span(span(
                        BoardResource::Dma,
                        SpanKind::Ingest,
                        ingest_start,
                        ingest_start + win_latency.upload_secs,
                    ));
                    sink.span(span(
                        BoardResource::Fabric,
                        SpanKind::Preprocess,
                        ingest_start + win_latency.upload_secs,
                        ingest_start + win_latency.upload_secs + win_latency.preprocess_secs,
                    ));
                    sink.span(span(
                        BoardResource::Dma,
                        SpanKind::Handoff,
                        win_done - download_secs,
                        win_done,
                    ));
                }
                let completion = engine.completions.insert(Completion {
                    tenant: request.tenant,
                    board: win_board,
                    arrival_secs: request.arrival_secs,
                    latency: win_latency,
                    host_bytes: win_host_bytes,
                    switch_bytes: win_switch_bytes,
                    bucket,
                    graph_bytes: coo_bytes,
                    cum_delta: cache_cum_delta,
                    entry_preprocess_secs: win_entry_preprocess,
                    cached: false,
                });
                engine
                    .queue
                    .push(win_done, EventKind::ServiceDone { completion });
            }
        }

        TrafficReport {
            tenants: stats.tenants,
            cache: cache.stats(),
            duration_secs: stats.last_board_free,
            reconfigs: stats.reconfigs,
            reconfig_secs: stats.reconfig_secs,
            queue_depth: depth,
            boards: pool.stats(),
            stages: stats.stages,
            overlap_secs: stats.overlap_secs,
            requests: stats.requests,
            stall: stats.stall,
            wasted_work_bytes: stats.wasted_work_bytes,
            wasted_secs: stats.wasted_secs,
            sim: SimPerf {
                wall_secs: wall_start.elapsed().as_secs_f64(),
                events,
            },
            trace_digest: digest.0,
        }
    }
}

/// Moves an ingested request into board `board`'s fabric at `now`: pays
/// the (deferred) reconfiguration decision — unless the scheduler's SLO
/// gate withholds it — prices preprocessing under the resulting
/// configuration, and schedules `FabricDone`.
#[allow(clippy::too_many_arguments)]
fn start_fabric<S: TraceSink + ?Sized>(
    handle: Handle,
    board: usize,
    now: f64,
    pool: &mut BoardPool,
    pipe: &mut Pipeline,
    stats: &mut RunStats,
    sched: &Scheduler,
    digest: &mut TraceDigest,
    cfg: &ServeConfig,
    sink: &mut S,
    engine: &mut Engine,
    memo: &mut CostMemo,
) {
    let (tenant, trace_id, workload, best, partial) = {
        let rq = engine.inflight.get(handle);
        (rq.tenant, rq.trace_id, rq.workload, rq.best, rq.partial)
    };
    let mut stall = 0.0;
    if !partial && sched.allow_reconfig(tenant, now) {
        if let Some(secs) = memo.maybe_reconfigure(tenant, &workload, best, pool, board) {
            stall = secs;
            stats.reconfigs += 1;
            stats.reconfig_secs += stall;
            stats.tenants[tenant].reconfigs += 1;
            digest.push(0x2C);
            digest.push(board as u64);
        }
    }
    // A partial cache hit reuses the cached fabric output: the stage (and
    // the reconfiguration decision above) is skipped outright.
    let preprocess_secs = if partial {
        0.0
    } else {
        memo.stage_total(tenant, &workload, pool, board) / cfg.compute_speedup
    };
    let done = now + stall + preprocess_secs;
    pool.occupy_fabric(board, now, done);
    if sink.enabled() {
        if stall > 0.0 {
            sink.span(Span {
                track: Track::Board {
                    board,
                    resource: BoardResource::Icap,
                },
                kind: SpanKind::Reconfig,
                tenant,
                request: trace_id,
                begin_secs: now,
                end_secs: now + stall,
            });
        }
        sink.span(Span {
            track: Track::Board {
                board,
                resource: BoardResource::Fabric,
            },
            kind: SpanKind::Preprocess,
            tenant,
            request: trace_id,
            begin_secs: now + stall,
            end_secs: done,
        });
    }
    // The fabric starting under an in-flight DMA transfer is pipeline
    // overlap (the symmetric case — DMA starting under the fabric — is
    // accounted at the transfer's start).
    if !pool.dma_free(board) {
        stats.overlap_secs += (done.min(pool.dma_until(board)) - now).max(0.0);
    }
    let rq = engine.inflight.get_mut(handle);
    rq.fabric_start_secs = now;
    rq.reconfig_secs = stall;
    rq.preprocess_secs = preprocess_secs;
    if !partial {
        // The cache entry this completion refills saves future hits this
        // (actually paid) fabric pass; a partial hit keeps the saved cost
        // it copied out of the entry it reused.
        rq.entry_preprocess_secs = preprocess_secs;
    }
    pipe.in_fabric[board] = Some(handle);
    engine.queue.push(done, EventKind::FabricDone { board });
}

/// Starts the next queued subgraph hand-off on board `board`'s DMA engine
/// if it is idle, scheduling the request's `ServiceDone`. The transfer
/// size and inference tail were memoized into the [`Pipelined`] record at
/// dispatch, so this path performs no cost-model work.
#[allow(clippy::too_many_arguments)]
fn start_handoff<S: TraceSink + ?Sized>(
    board: usize,
    now: f64,
    pool: &mut BoardPool,
    pipe: &mut Pipeline,
    stats: &mut RunStats,
    pcie: &agnn_hw::shell::PcieModel,
    sink: &mut S,
    engine: &mut Engine,
) {
    if !pool.dma_free(board) {
        return;
    }
    let Some(handle) = pipe.handoffs[board].pop_front() else {
        return;
    };
    pool.add_pending_handoffs(board, -1);
    // The request leaves the pipeline here: reclaim its slab slot and
    // carry the record by value through the final pricing.
    let rq = engine.inflight.remove(handle);
    let download_secs = pcie.transfer_secs(rq.subgraph_bytes);
    let done = now + download_secs;
    pool.occupy_dma(board, now, done);
    if sink.enabled() {
        sink.span(Span {
            track: Track::Board {
                board,
                resource: BoardResource::Dma,
            },
            kind: SpanKind::Handoff,
            tenant: rq.tenant,
            request: rq.trace_id,
            begin_secs: now,
            end_secs: done,
        });
    }
    if !pool.fabric_free(board) {
        stats.overlap_secs += (done.min(pool.fabric_until(board)) - now).max(0.0);
    }
    let inference_secs = rq.inference_secs;
    let latency = RequestLatency {
        queue_secs: rq.dispatch_secs - rq.arrival_secs,
        reconfig_secs: rq.reconfig_secs,
        upload_secs: rq.upload_secs,
        stage_wait_secs: (rq.fabric_start_secs - rq.ingest_done_secs) + (now - rq.fabric_done_secs),
        preprocess_secs: rq.preprocess_secs,
        download_secs,
        inference_secs,
        cache_secs: 0.0,
    };
    let completion = engine.completions.insert(Completion {
        tenant: rq.tenant,
        board,
        arrival_secs: rq.arrival_secs,
        latency,
        host_bytes: rq.host_bytes,
        switch_bytes: rq.switch_bytes,
        bucket: rq.bucket,
        graph_bytes: rq.graph_bytes,
        cum_delta: rq.cum_delta,
        entry_preprocess_secs: rq.entry_preprocess_secs,
        cached: false,
    });
    engine
        .queue
        .push(done, EventKind::ServiceDone { completion });
}

/// Where (and how) the next dispatch lands.
enum Placement {
    /// Serve queue `position` on `board` — the request's placement-policy
    /// pick, ingesting from the host or a warm local copy.
    Serve { position: usize, board: usize },
    /// [`MigratePolicy::SplitHot`] overflow: serve queue `position` on
    /// idle `board` even though the request's affine/home board is busy —
    /// the tenant's graph migrates in from a peer when one holds a copy.
    Migrating { position: usize, board: usize },
}

/// The SplitHot fallback when every queued request is waiting for a busy
/// affine/home board: once the queue outgrows the policy threshold, the
/// front request claims the least-loaded free board as a
/// [`Placement::Migrating`] dispatch instead of waiting.
fn split_overflow(cfg: &ServeConfig, queue: &[Request], pool: &BoardPool) -> Option<Placement> {
    let threshold = cfg.migrate.split_threshold()?;
    if queue.len() < threshold {
        return None;
    }
    let board = pool.least_loaded_free()?;
    Some(Placement::Migrating { position: 0, board })
}

/// Picks the next dispatch, or `None` when no placement is currently
/// possible (e.g. every home board of every queued request is busy under
/// [`PlacementPolicy::TenantAffine`] and the migration policy keeps them
/// waiting). `queue` is the scheduler's scan order — arrival order under
/// [`SchedKind::Fifo`], the deficit-round-robin fair order under
/// [`SchedKind::WeightedFair`] — so placement reads the scheduler's
/// preference as a hint and positions index back into the scan.
fn select_dispatch(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &[Request],
    memo: &mut CostMemo,
    pool: &BoardPool,
    now: f64,
) -> Option<Placement> {
    match cfg.placement {
        // The home board of the earliest-arrived dispatchable request
        // serves; the dispatch policy then picks among the requests homed
        // to that board (a home board never serves foreign tenants, so
        // the reconfig-aware scan is restricted to its own backlog).
        PlacementPolicy::TenantAffine => {
            let Some(board) = queue.iter().find_map(|r| {
                let home = tenants[r.tenant].home_board(r.tenant, pool.size());
                pool.is_free(home).then_some(home)
            }) else {
                // Every home board is busy: wait, unless the queue has
                // outgrown the SplitHot threshold.
                return split_overflow(cfg, queue, pool);
            };
            let homed = |r: &Request| tenants[r.tenant].home_board(r.tenant, pool.size()) == board;
            let position = pick_for_board(tenants, cfg, queue, memo, pool, board, now, homed)?;
            Some(Placement::Serve { position, board })
        }
        // The least-loaded free board serves; its dispatch policy picks
        // the request — with one board this is exactly the PR 1 scheduler.
        PlacementPolicy::LeastLoaded => {
            let board = pool.least_loaded_free()?;
            let position = pick_for_board(tenants, cfg, queue, memo, pool, board, now, |_| true)?;
            Some(Placement::Serve { position, board })
        }
        // Route a request to a board already holding its bitstream. A
        // request whose bitstream lives on a *busy* board waits for it
        // (bounded by the starvation guard) instead of reprogramming an
        // idle board — that restraint is what turns reconfigurations into
        // routing decisions. Only a bitstream no board holds claims the
        // least-loaded free board and pays one switch.
        PlacementPolicy::BitstreamAffine => {
            let max_queue_delay_secs = match cfg.policy {
                // FIFO promises strict arrival order, so the affinity
                // scan must not overtake: placement only picks the front
                // request's board (a zero starvation bound).
                DispatchPolicy::Fifo => 0.0,
                DispatchPolicy::ReconfigAware {
                    max_queue_delay_secs,
                } => max_queue_delay_secs,
            };
            let front = &queue[0];
            if now - front.arrival_secs >= max_queue_delay_secs {
                let front_best = memo.best_config(front.tenant, &tenants[front.tenant], now, pool);
                let board = pool
                    .free_with_config(front_best)
                    .or_else(|| pool.least_loaded_free())?;
                return Some(Placement::Serve { position: 0, board });
            }
            // Pass 1: the earliest request whose optimal bitstream is
            // already programmed on a free board (with one board this is
            // exactly the PR 1 reconfig-aware queue scan).
            for (position, r) in queue.iter().enumerate() {
                let best = memo.best_config(r.tenant, &tenants[r.tenant], now, pool);
                if let Some(board) = pool.free_with_config(best) {
                    return Some(Placement::Serve { position, board });
                }
            }
            // Pass 2: the earliest request whose bitstream no board holds
            // claims the least-loaded free board.
            for (position, r) in queue.iter().enumerate() {
                let best = memo.best_config(r.tenant, &tenants[r.tenant], now, pool);
                if !pool.any_with_config(best) {
                    let board = pool.least_loaded_free()?;
                    return Some(Placement::Serve { position, board });
                }
            }
            // Every queued bitstream is held by a busy board: wait for
            // it — unless the queue has outgrown the SplitHot threshold,
            // in which case the hot tenant splits onto an idle board.
            split_overflow(cfg, queue, pool)
        }
    }
}

/// The queue position `board` serves next under the configured dispatch
/// policy (PR 1's pick, parameterized by the board's bitstream), scanning
/// only requests `eligible` admits — `TenantAffine` placement restricts
/// the scan to the board's own tenants, everything else passes all.
/// `None` when no queued request is eligible.
#[allow(clippy::too_many_arguments)]
fn pick_for_board(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &[Request],
    memo: &mut CostMemo,
    pool: &BoardPool,
    board: usize,
    now: f64,
    eligible: impl Fn(&Request) -> bool,
) -> Option<usize> {
    let front_pos = queue.iter().position(&eligible)?;
    match cfg.policy {
        DispatchPolicy::Fifo => Some(front_pos),
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs,
        } => {
            let front = &queue[front_pos];
            if now - front.arrival_secs >= max_queue_delay_secs {
                return Some(front_pos);
            }
            let current = pool.config(board);
            queue
                .iter()
                .enumerate()
                .filter(|(_, r)| eligible(r))
                .find(|(_, r)| memo.best_config(r.tenant, &tenants[r.tenant], now, pool) == current)
                .map(|(position, _)| position)
                .or(Some(front_pos))
        }
    }
}

/// Entries kept per tenant in the [`CostMemo`] keyed caches. In-flight
/// requests from older drift buckets are bounded by the pipeline depth
/// (at most a few per board), so a small cap never thrashes; eviction
/// only costs a recompute, never correctness.
const COST_MEMO_CAP: usize = 16;

/// The drift-bucket row of one tenant's memoized pure costs, copied out
/// by value at dispatch.
#[derive(Debug, Clone, Copy)]
struct BucketCosts {
    /// The bucket's workload (what [`TenantSpec::workload_at`] returns
    /// for any `now` inside the bucket).
    workload: Workload,
    /// [`Workload::coo_bytes`] — the full-graph upload size.
    coo_bytes: u64,
    /// [`Workload::subgraph_bytes`] — the hand-off transfer size.
    subgraph_bytes: u64,
    /// [`GpuInferenceModel::analytic_inference_secs`] under the tenant's
    /// GNN for this bucket's subgraph.
    inference_secs: f64,
}

/// One tenant's memo: the current drift-bucket row plus small keyed
/// caches for config-dependent results (which must key on the *request's*
/// workload — a pipelined request can reach the fabric after its tenant
/// drifted into a newer bucket).
#[derive(Debug)]
struct TenantMemo {
    /// Drift bucket `costs` belongs to (`None` until first touched).
    bucket: Option<u64>,
    costs: BucketCosts,
    /// `bucket → library-optimal configuration` (the
    /// [`CostModel::choose_config`] pick the dispatch scan re-reads for
    /// every queued request inside a drift step).
    best: Option<(u64, HwConfig)>,
    /// `(workload, config) → fabric preprocessing seconds` (the
    /// [`BoardPool::stage_secs`] total). An [`FxHashMap`] — the
    /// multiply-rotate hash is deterministic across processes (no
    /// `RandomState` seed) and a fraction of SipHash's cost on these
    /// small `Copy` keys, and the map is only ever probed by key, never
    /// iterated, so hash order cannot leak into the schedule.
    stages: FxHashMap<(Workload, HwConfig), f64>,
    /// `(workload, current, best) → should-reconfigure verdict`. Same
    /// [`FxHashMap`] rationale as `stages`.
    verdicts: FxHashMap<(Workload, HwConfig, HwConfig), bool>,
}

/// Memo of the pure cost-model quantities the event loop re-derives on
/// every dispatch: the drift-bucket workload (`powf` drift factors), the
/// neighborhood-expansion sums behind `subgraph_*`, the analytic fabric
/// report, and the reconfiguration-policy estimates. Every cached value
/// is the exact number the underlying call would produce for the same
/// inputs, so the memo moves wall-clock only — the schedule, latencies
/// and trace digest are untouched (the golden-digest pins in
/// `tests/serve_traffic.rs` hold through it).
#[derive(Debug)]
struct CostMemo {
    step_secs: f64,
    rows: Vec<TenantMemo>,
}

impl CostMemo {
    fn new(tenant_count: usize, step_secs: f64) -> Self {
        let empty = BucketCosts {
            workload: Workload::new(0, 0, 0, 0, 0),
            coo_bytes: 0,
            subgraph_bytes: 0,
            inference_secs: 0.0,
        };
        CostMemo {
            step_secs,
            rows: (0..tenant_count)
                .map(|_| TenantMemo {
                    bucket: None,
                    costs: empty,
                    best: None,
                    stages: FxHashMap::default(),
                    verdicts: FxHashMap::default(),
                })
                .collect(),
        }
    }

    /// The memoized drift-bucket row for `tenant` at `now`, rebuilt on a
    /// bucket miss (one workload construction plus two expansion passes
    /// per tenant per drift step, instead of per dispatch).
    fn bucket_costs(
        &mut self,
        index: usize,
        tenant: &TenantSpec,
        now: f64,
        inference: &GpuInferenceModel,
    ) -> BucketCosts {
        let bucket = tenant.drift_bucket(now, self.step_secs);
        let row = &mut self.rows[index];
        if row.bucket != Some(bucket) {
            let workload = tenant.workload_at(now, self.step_secs);
            row.bucket = Some(bucket);
            row.costs = BucketCosts {
                workload,
                coo_bytes: workload.coo_bytes(),
                subgraph_bytes: workload.subgraph_bytes(),
                inference_secs: inference.analytic_inference_secs(
                    &tenant.gnn,
                    workload.subgraph_nodes(),
                    workload.subgraph_edges(),
                ),
            };
        }
        row.costs
    }

    /// The library-optimal configuration for `tenant`'s current drift
    /// bucket, memoized per tenant. The workload (and its `powf` drift
    /// factors) is only built on a bucket miss — the dispatch scan hits
    /// the memo for every queued request inside a drift step. The memo is
    /// sound pool-wide: all boards search the same bitstream library.
    fn best_config(
        &mut self,
        index: usize,
        tenant: &TenantSpec,
        now: f64,
        pool: &BoardPool,
    ) -> HwConfig {
        let bucket = tenant.drift_bucket(now, self.step_secs);
        let row = &mut self.rows[index];
        if let Some((cached_bucket, config)) = row.best {
            if cached_bucket == bucket {
                return config;
            }
        }
        let workload = tenant.workload_at(now, self.step_secs);
        let best = CostModel.choose_config(&workload, pool.library());
        row.best = Some((bucket, best));
        best
    }

    /// [`BoardPool::stage_secs`] under board `board`'s current
    /// configuration, memoized per `(workload, config)` — sound pool-wide
    /// because every board shares one fabric timing model.
    fn stage_total(
        &mut self,
        index: usize,
        workload: &Workload,
        pool: &BoardPool,
        board: usize,
    ) -> f64 {
        let config = pool.config(board);
        let row = &mut self.rows[index];
        if let Some(&secs) = row.stages.get(&(*workload, config)) {
            return secs;
        }
        let secs = pool.stage_secs(board, workload);
        if row.stages.len() >= COST_MEMO_CAP {
            // Wholesale clear instead of per-entry LRU: the cap is only
            // reached when a tenant straddles a drift boundary, and every
            // evicted value is an exact recompute away.
            row.stages.clear();
        }
        row.stages.insert((*workload, config), secs);
        secs
    }

    /// [`BoardPool::maybe_reconfigure`] with the policy verdict memoized
    /// per `(workload, current, best)`: only a `true` verdict touches the
    /// board (through [`BoardPool::apply_reconfigure`]).
    fn maybe_reconfigure(
        &mut self,
        index: usize,
        workload: &Workload,
        best: HwConfig,
        pool: &mut BoardPool,
        board: usize,
    ) -> Option<f64> {
        let current = pool.config(board);
        if best == current {
            return None;
        }
        let row = &mut self.rows[index];
        let verdict = match row.verdicts.get(&(*workload, current, best)) {
            Some(&verdict) => verdict,
            None => {
                let verdict = pool.policy().should_reconfigure(workload, current, best);
                if row.verdicts.len() >= COST_MEMO_CAP {
                    row.verdicts.clear();
                }
                row.verdicts.insert((*workload, current, best), verdict);
                verdict
            }
        };
        verdict.then(|| pool.apply_reconfigure(board, best))
    }
}

/// Runs one simulation over `tenants` with `config`.
pub fn simulate(tenants: Vec<TenantSpec>, config: ServeConfig) -> TrafficReport {
    let mut sim = TrafficSim::new(tenants, config);
    sim.run()
}

//! The discrete-event traffic simulator.
//!
//! A binary-heap event queue advances simulated time (`now: f64` seconds)
//! through tenant arrivals and service completions. Requests pass a bounded
//! admission queue (overflow is dropped and counted, never silently lost),
//! then a [`DispatchPolicy`] picks the next request and decides when the
//! accelerator reprograms. Every per-request price — upload delta,
//! preprocessing, download, reconfiguration stall, inference tail — comes
//! from the same models `AutoGnn::serve` uses, via the analytic path, so
//! the simulator replays hundreds of thousands of requests in milliseconds.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use agnn_core::runtime::AutoGnn;
use agnn_cost::{CostModel, ReconfigPolicy};
use agnn_gnn::timing::GpuInferenceModel;
use agnn_hw::shell::PcieModel;
use agnn_hw::HwConfig;

use crate::metrics::{DepthTimeline, LatencyHistogram, RequestLatency, TenantStats, TrafficReport};
use crate::tenant::TenantSpec;

/// How the scheduler picks the next request and pays reconfigurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Strict arrival order; the runtime's per-request threshold policy
    /// decides reconfigurations — interleaved tenants with different
    /// optimal bitstreams thrash the ICAP.
    Fifo,
    /// Serves queued requests whose optimal bitstream matches the one
    /// currently programmed first (in arrival order), switching only when
    /// none match — amortizing each `ReconfigEvent` over a whole batch. A
    /// starvation guard dispatches the front request once it has waited
    /// `max_queue_delay_secs`.
    ReconfigAware {
        /// Longest a request may be overtaken before it is served anyway.
        max_queue_delay_secs: f64,
    },
}

impl DispatchPolicy {
    /// The reconfig-aware policy with a 30-second starvation guard.
    pub fn reconfig_aware() -> Self {
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs: 30.0,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Deployment seed: drives every arrival stream.
    pub seed: u64,
    /// Admission-queue capacity; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Offered load: total arrivals generated before the queue drains.
    pub total_requests: u64,
    /// Drift quantization step in simulated seconds (bitstream choices are
    /// re-evaluated once per step per tenant).
    pub drift_step_secs: f64,
    /// Minimum predicted relative gain before a reconfiguration is paid.
    pub min_gain: f64,
    /// Queue-depth timeline decimation stride.
    pub depth_stride: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0,
            queue_capacity: 256,
            policy: DispatchPolicy::Fifo,
            total_requests: 10_000,
            drift_step_secs: 3_600.0,
            min_gain: 0.10,
            depth_stride: 64,
        }
    }
}

/// One admitted request waiting for dispatch.
#[derive(Debug, Clone, Copy)]
struct Request {
    tenant: usize,
    arrival_secs: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A request of `tenant` arrives.
    Arrival { tenant: usize },
    /// The accelerator finishes the in-flight request.
    ServiceDone {
        tenant: usize,
        queue_secs: f64,
        reconfig_secs: f64,
        upload_secs: f64,
        preprocess_secs: f64,
        download_secs: f64,
        inference_secs: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event;
        // the sequence number breaks time ties deterministically.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FNV-1a accumulator for the order-sensitive event-trace digest.
#[derive(Debug, Clone, Copy)]
struct TraceDigest(u64);

impl TraceDigest {
    fn new() -> Self {
        TraceDigest(0xCBF2_9CE4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        let mut h = self.0;
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// The multi-tenant traffic simulator.
#[derive(Debug)]
pub struct TrafficSim {
    tenants: Vec<TenantSpec>,
    config: ServeConfig,
}

impl TrafficSim {
    /// A simulator over `tenants` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or the queue capacity is zero.
    pub fn new(tenants: Vec<TenantSpec>, config: ServeConfig) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        TrafficSim { tenants, config }
    }

    /// Runs the simulation to completion and reports.
    pub fn run(&self) -> TrafficReport {
        let cfg = self.config;
        let first = self.tenants[0].params;
        let mut board = AutoGnn::new(first);
        board.set_policy(ReconfigPolicy {
            min_gain: cfg.min_gain,
        });
        let pcie = PcieModel::default();
        let inference_model = GpuInferenceModel::default();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind| {
            heap.push(Event { time, seq, kind });
            seq += 1;
        };

        // Independent seeded arrival streams; the first arrival of every
        // tenant primes the heap.
        let mut rngs: Vec<_> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| t.arrival_rng(cfg.seed, i))
            .collect();
        let mut offered = 0u64;
        for (i, t) in self.tenants.iter().enumerate() {
            if offered < cfg.total_requests {
                let at = t.arrival.next_after(0.0, &mut rngs[i]);
                push(&mut heap, at, EventKind::Arrival { tenant: i });
                offered += 1;
            }
        }

        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut busy = false;
        let mut resident_bytes: Vec<u64> = vec![0; self.tenants.len()];
        // (drift bucket, best config) per tenant.
        let mut best_cache: Vec<Option<(u64, HwConfig)>> = vec![None; self.tenants.len()];

        let mut stats: Vec<TenantStats> = self
            .tenants
            .iter()
            .map(|t| TenantStats {
                name: t.name.clone(),
                latency: LatencyHistogram::default(),
                ..TenantStats::default()
            })
            .collect();
        let mut depth = DepthTimeline::with_stride(cfg.depth_stride);
        let mut digest = TraceDigest::new();
        let mut reconfigs = 0u64;
        let mut reconfig_secs = 0.0f64;
        let mut last_board_free = 0.0f64;

        while let Some(event) = heap.pop() {
            let now = event.time;
            match event.kind {
                EventKind::Arrival { tenant } => {
                    digest.push(0xA1);
                    digest.push(tenant as u64);
                    digest.push(now.to_bits());
                    // Keep the tenant's stream flowing while load remains.
                    if offered < cfg.total_requests {
                        let at = self.tenants[tenant]
                            .arrival
                            .next_after(now, &mut rngs[tenant]);
                        push(&mut heap, at, EventKind::Arrival { tenant });
                        offered += 1;
                    }
                    // Bounded admission: overflow is dropped and counted.
                    if queue.len() >= cfg.queue_capacity {
                        stats[tenant].dropped += 1;
                        digest.push(0xD0);
                        continue;
                    }
                    queue.push_back(Request {
                        tenant,
                        arrival_secs: now,
                    });
                    depth.record(now, queue.len());
                }
                EventKind::ServiceDone {
                    tenant,
                    queue_secs,
                    reconfig_secs: stall,
                    upload_secs,
                    preprocess_secs,
                    download_secs,
                    inference_secs,
                } => {
                    let latency = RequestLatency {
                        queue_secs,
                        reconfig_secs: stall,
                        upload_secs,
                        preprocess_secs,
                        download_secs,
                        inference_secs,
                    };
                    let t = &mut stats[tenant];
                    t.completed += 1;
                    t.latency.record(latency.total());
                    t.board_secs += latency.board_secs();
                    digest.push(0x5D);
                    digest.push(tenant as u64);
                    digest.push(latency.total().to_bits());
                    busy = false;
                    last_board_free = now;
                }
            }

            // Dispatch whenever the accelerator is free and work waits.
            if !busy && !queue.is_empty() {
                let position = self.pick(&queue, &mut best_cache, &board, now);
                let request = queue
                    .remove(position)
                    .expect("pick returns an in-range queue position");
                depth.record(now, queue.len());
                let tenant = &self.tenants[request.tenant];
                let workload = tenant.workload_at(now, cfg.drift_step_secs);
                let best = cached_best(
                    &mut best_cache,
                    request.tenant,
                    tenant,
                    now,
                    cfg.drift_step_secs,
                    &board,
                );

                // Reconfiguration: both policies respect the runtime's
                // min-gain threshold; they differ in how often the decision
                // point sees a foreign bitstream.
                let mut stall = 0.0;
                if best != board.config()
                    && board
                        .policy()
                        .should_reconfigure(&workload, board.config(), best)
                {
                    let event = board.force_reconfigure(best);
                    stall = event.seconds;
                    reconfigs += 1;
                    reconfig_secs += stall;
                    stats[request.tenant].reconfigs += 1;
                    digest.push(0x2C);
                }

                // Price the request analytically under the (possibly new)
                // configuration.
                let coo_bytes = workload.coo_bytes();
                let delta = coo_bytes.saturating_sub(resident_bytes[request.tenant]);
                resident_bytes[request.tenant] = coo_bytes;
                let upload_secs = if delta == 0 {
                    0.0
                } else {
                    pcie.transfer_secs(delta)
                };
                let preprocess_secs = board.analytic_stage_secs(&workload).total();
                let download_secs = pcie.transfer_secs(workload.subgraph_bytes());
                let inference_secs = inference_model.analytic_inference_secs(
                    &tenant.gnn,
                    workload.subgraph_nodes(),
                    workload.subgraph_edges(),
                );

                let done = now + stall + upload_secs + preprocess_secs + download_secs;
                busy = true;
                push(
                    &mut heap,
                    done,
                    EventKind::ServiceDone {
                        tenant: request.tenant,
                        queue_secs: now - request.arrival_secs,
                        reconfig_secs: stall,
                        upload_secs,
                        preprocess_secs,
                        download_secs,
                        inference_secs,
                    },
                );
            }
        }

        TrafficReport {
            tenants: stats,
            duration_secs: last_board_free,
            reconfigs,
            reconfig_secs,
            queue_depth: depth,
            trace_digest: digest.0,
        }
    }

    /// Picks the queue position to dispatch next under the configured
    /// policy.
    fn pick(
        &self,
        queue: &VecDeque<Request>,
        best_cache: &mut [Option<(u64, HwConfig)>],
        board: &AutoGnn,
        now: f64,
    ) -> usize {
        match self.config.policy {
            DispatchPolicy::Fifo => 0,
            DispatchPolicy::ReconfigAware {
                max_queue_delay_secs,
            } => {
                let front = &queue[0];
                if now - front.arrival_secs >= max_queue_delay_secs {
                    return 0;
                }
                let current = board.config();
                queue
                    .iter()
                    .position(|r| {
                        let best = cached_best(
                            best_cache,
                            r.tenant,
                            &self.tenants[r.tenant],
                            now,
                            self.config.drift_step_secs,
                            board,
                        );
                        best == current
                    })
                    .unwrap_or(0)
            }
        }
    }
}

/// The library-optimal configuration for a tenant's current drift bucket,
/// memoized per tenant. The workload (and its `powf` drift factors) is only
/// built on a bucket miss — the dispatch scan hits the cache for every
/// queued request inside a drift step.
fn cached_best(
    cache: &mut [Option<(u64, HwConfig)>],
    index: usize,
    tenant: &TenantSpec,
    now: f64,
    step_secs: f64,
    board: &AutoGnn,
) -> HwConfig {
    let bucket = tenant.drift_bucket(now, step_secs);
    if let Some((cached_bucket, config)) = cache[index] {
        if cached_bucket == bucket {
            return config;
        }
    }
    let workload = tenant.workload_at(now, step_secs);
    let best = CostModel.choose_config(&workload, board.library());
    cache[index] = Some((bucket, best));
    best
}

/// Runs one simulation over `tenants` with `config`.
pub fn simulate(tenants: Vec<TenantSpec>, config: ServeConfig) -> TrafficReport {
    TrafficSim::new(tenants, config).run()
}

//! The discrete-event traffic simulator.
//!
//! A binary-heap event queue advances simulated time (`now: f64` seconds)
//! through tenant arrivals and service completions. Requests pass a bounded
//! admission queue (overflow is dropped and counted, never silently lost),
//! then two pluggable policies cooperate on every dispatch:
//!
//! - a [`PlacementPolicy`] routes the request to one board of the
//!   [`BoardPool`] — N simulated accelerators, each with its own bitstream
//!   state, reconfiguration clock, in-flight slot and resident-graph
//!   memory;
//! - a [`DispatchPolicy`] picks which queued request the chosen board
//!   serves and decides when that board reprograms.
//!
//! Every per-request price — upload delta, preprocessing, download,
//! reconfiguration stall, inference tail — comes from the same models
//! `AutoGnn::serve` uses, via the analytic path, so the simulator replays
//! hundreds of thousands of requests in milliseconds.
//!
//! A single-board pool reproduces the PR 1 simulator bit-for-bit: the same
//! schedule, latencies and trace digest (pinned in `tests/serve_traffic.rs`),
//! so perf numbers stay comparable across the whole trajectory.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use agnn_cost::{CostModel, ReconfigPolicy};
use agnn_gnn::timing::GpuInferenceModel;
use agnn_hw::shell::PcieModel;
use agnn_hw::HwConfig;

use crate::metrics::{DepthTimeline, LatencyHistogram, RequestLatency, TenantStats, TrafficReport};
use crate::pool::{BoardPool, PlacementPolicy};
use crate::tenant::TenantSpec;

/// How the scheduler picks the next request and pays reconfigurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Strict arrival order; the runtime's per-request threshold policy
    /// decides reconfigurations — interleaved tenants with different
    /// optimal bitstreams thrash the ICAP.
    Fifo,
    /// Serves queued requests whose optimal bitstream matches the one
    /// currently programmed first (in arrival order), switching only when
    /// none match — amortizing each `ReconfigEvent` over a whole batch. A
    /// starvation guard dispatches the front request once it has waited
    /// `max_queue_delay_secs`.
    ReconfigAware {
        /// Longest a request may be overtaken before it is served anyway.
        max_queue_delay_secs: f64,
    },
}

impl DispatchPolicy {
    /// The reconfig-aware policy with a 30-second starvation guard.
    pub fn reconfig_aware() -> Self {
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs: 30.0,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Deployment seed: drives every arrival stream.
    pub seed: u64,
    /// Admission-queue capacity; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Dispatch policy (which queued request a board serves next).
    pub policy: DispatchPolicy,
    /// Number of simulated boards in the pool.
    pub boards: usize,
    /// Placement policy (which board an admitted request runs on).
    pub placement: PlacementPolicy,
    /// Per-board compute speed multiplier: preprocessing runs this many
    /// times faster, while ICAP reprogramming and PCIe transfers keep
    /// their physical rates. Models "one board N× as fast" comparisons
    /// against an N-board pool.
    pub compute_speedup: f64,
    /// Offered load: total arrivals generated before the queue drains.
    pub total_requests: u64,
    /// Drift quantization step in simulated seconds (bitstream choices are
    /// re-evaluated once per step per tenant).
    pub drift_step_secs: f64,
    /// Minimum predicted relative gain before a reconfiguration is paid.
    pub min_gain: f64,
    /// Queue-depth timeline decimation stride.
    pub depth_stride: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0,
            queue_capacity: 256,
            policy: DispatchPolicy::Fifo,
            boards: 1,
            placement: PlacementPolicy::LeastLoaded,
            compute_speedup: 1.0,
            total_requests: 10_000,
            drift_step_secs: 3_600.0,
            min_gain: 0.10,
            depth_stride: 64,
        }
    }
}

/// One admitted request waiting for dispatch.
#[derive(Debug, Clone, Copy)]
struct Request {
    tenant: usize,
    arrival_secs: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A request of `tenant` arrives.
    Arrival { tenant: usize },
    /// Board `board` finishes its in-flight request.
    ServiceDone {
        tenant: usize,
        board: usize,
        queue_secs: f64,
        reconfig_secs: f64,
        upload_secs: f64,
        preprocess_secs: f64,
        download_secs: f64,
        inference_secs: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event;
        // the sequence number breaks time ties deterministically.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FNV-1a accumulator for the order-sensitive event-trace digest.
#[derive(Debug, Clone, Copy)]
struct TraceDigest(u64);

impl TraceDigest {
    fn new() -> Self {
        TraceDigest(0xCBF2_9CE4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        let mut h = self.0;
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// The multi-tenant traffic simulator over a board pool.
#[derive(Debug)]
pub struct TrafficSim {
    tenants: Vec<TenantSpec>,
    config: ServeConfig,
    pool: BoardPool,
}

impl TrafficSim {
    /// A simulator over `tenants` with `config`. The board pool is built
    /// here (one forked `AutoGnn` runtime per board) and reset at the
    /// start of every [`run`](TrafficSim::run), so one simulator can
    /// replay many deterministic simulations.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, the queue capacity or board count is
    /// zero, or the compute speedup is not a positive finite number.
    pub fn new(tenants: Vec<TenantSpec>, config: ServeConfig) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.compute_speedup > 0.0 && config.compute_speedup.is_finite(),
            "compute speedup must be positive and finite"
        );
        let pool = BoardPool::new(
            config.boards,
            tenants[0].params,
            ReconfigPolicy {
                min_gain: config.min_gain,
            },
            tenants.len(),
        );
        TrafficSim {
            tenants,
            config,
            pool,
        }
    }

    /// Number of boards in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.size()
    }

    /// Runs the simulation to completion and reports. Takes `&mut self`
    /// because the pool carries mutable per-board state (bitstreams,
    /// residency, busy slots); the pool is reset first, so repeated runs
    /// of the same simulator are identical.
    pub fn run(&mut self) -> TrafficReport {
        let cfg = self.config;
        let TrafficSim { tenants, pool, .. } = self;
        pool.reset();
        // Multi-board runs tag reconfiguration and completion digest words
        // with the board index; the single-board layout is frozen so PR 1
        // digests stay reproducible.
        let tag_boards = pool.size() > 1;
        let pcie = PcieModel::default();
        let inference_model = GpuInferenceModel::default();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind| {
            heap.push(Event { time, seq, kind });
            seq += 1;
        };

        // Independent seeded arrival streams; the first arrival of every
        // tenant primes the heap.
        let mut rngs: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| t.arrival_rng(cfg.seed, i))
            .collect();
        let mut offered = 0u64;
        for (i, t) in tenants.iter().enumerate() {
            if offered < cfg.total_requests {
                let at = t.arrival.next_after(0.0, &mut rngs[i]);
                push(&mut heap, at, EventKind::Arrival { tenant: i });
                offered += 1;
            }
        }

        let mut queue: VecDeque<Request> = VecDeque::new();
        // (drift bucket, best config) per tenant — shared across boards:
        // every board searches the identical bitstream library.
        let mut best_cache: Vec<Option<(u64, HwConfig)>> = vec![None; tenants.len()];

        let mut stats: Vec<TenantStats> = tenants
            .iter()
            .map(|t| TenantStats {
                name: t.name.clone(),
                latency: LatencyHistogram::default(),
                ..TenantStats::default()
            })
            .collect();
        let mut depth = DepthTimeline::with_stride(cfg.depth_stride);
        let mut digest = TraceDigest::new();
        let mut reconfigs = 0u64;
        let mut reconfig_secs = 0.0f64;
        let mut last_board_free = 0.0f64;

        while let Some(event) = heap.pop() {
            let now = event.time;
            match event.kind {
                EventKind::Arrival { tenant } => {
                    digest.push(0xA1);
                    digest.push(tenant as u64);
                    digest.push(now.to_bits());
                    // Keep the tenant's stream flowing while load remains.
                    if offered < cfg.total_requests {
                        let at = tenants[tenant].arrival.next_after(now, &mut rngs[tenant]);
                        push(&mut heap, at, EventKind::Arrival { tenant });
                        offered += 1;
                    }
                    // Bounded admission: overflow is dropped and counted.
                    if queue.len() >= cfg.queue_capacity {
                        stats[tenant].dropped += 1;
                        digest.push(0xD0);
                        continue;
                    }
                    queue.push_back(Request {
                        tenant,
                        arrival_secs: now,
                    });
                    depth.record(now, queue.len());
                }
                EventKind::ServiceDone {
                    tenant,
                    board,
                    queue_secs,
                    reconfig_secs: stall,
                    upload_secs,
                    preprocess_secs,
                    download_secs,
                    inference_secs,
                } => {
                    let latency = RequestLatency {
                        queue_secs,
                        reconfig_secs: stall,
                        upload_secs,
                        preprocess_secs,
                        download_secs,
                        inference_secs,
                    };
                    let t = &mut stats[tenant];
                    t.completed += 1;
                    t.latency.record(latency.total());
                    t.board_secs += latency.board_secs();
                    digest.push(0x5D);
                    digest.push(tenant as u64);
                    digest.push(latency.total().to_bits());
                    if tag_boards {
                        digest.push(board as u64);
                    }
                    pool.release(board);
                    last_board_free = now;
                }
            }

            // Dispatch while boards are free and work waits. Each pass
            // routes one request to one board; placement decides the pair.
            while pool.any_free() && !queue.is_empty() {
                let Some((position, board)) =
                    select_dispatch(tenants, &cfg, &queue, &mut best_cache, pool, now)
                else {
                    break;
                };
                let request = queue
                    .remove(position)
                    .expect("placement returns an in-range queue position");
                depth.record(now, queue.len());
                let tenant = &tenants[request.tenant];
                let workload = tenant.workload_at(now, cfg.drift_step_secs);
                let best = cached_best(
                    &mut best_cache,
                    request.tenant,
                    tenant,
                    now,
                    cfg.drift_step_secs,
                    pool,
                );

                // Reconfiguration: every policy respects the board's
                // min-gain threshold; policies differ in how often a
                // board's decision point sees a foreign bitstream.
                let mut stall = 0.0;
                if let Some(secs) = pool.maybe_reconfigure(board, &workload, best) {
                    stall = secs;
                    reconfigs += 1;
                    reconfig_secs += stall;
                    stats[request.tenant].reconfigs += 1;
                    digest.push(0x2C);
                    if tag_boards {
                        digest.push(board as u64);
                    }
                }

                // Price the request analytically under the board's
                // (possibly new) configuration.
                let coo_bytes = workload.coo_bytes();
                let delta = pool.upload_delta(board, request.tenant, coo_bytes);
                let upload_secs = if delta == 0 {
                    0.0
                } else {
                    pcie.transfer_secs(delta)
                };
                let preprocess_secs = pool.stage_secs(board, &workload) / cfg.compute_speedup;
                let download_secs = pcie.transfer_secs(workload.subgraph_bytes());
                let inference_secs = inference_model.analytic_inference_secs(
                    &tenant.gnn,
                    workload.subgraph_nodes(),
                    workload.subgraph_edges(),
                );

                let done = now + stall + upload_secs + preprocess_secs + download_secs;
                pool.occupy(board, now, done);
                push(
                    &mut heap,
                    done,
                    EventKind::ServiceDone {
                        tenant: request.tenant,
                        board,
                        queue_secs: now - request.arrival_secs,
                        reconfig_secs: stall,
                        upload_secs,
                        preprocess_secs,
                        download_secs,
                        inference_secs,
                    },
                );
            }
        }

        TrafficReport {
            tenants: stats,
            duration_secs: last_board_free,
            reconfigs,
            reconfig_secs,
            queue_depth: depth,
            boards: pool.stats(),
            trace_digest: digest.0,
        }
    }
}

/// Picks the next `(queue position, board)` pair to dispatch, or `None`
/// when no placement is currently possible (e.g. every home board of every
/// queued request is busy under [`PlacementPolicy::TenantAffine`]).
fn select_dispatch(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &VecDeque<Request>,
    best_cache: &mut [Option<(u64, HwConfig)>],
    pool: &BoardPool,
    now: f64,
) -> Option<(usize, usize)> {
    match cfg.placement {
        // The home board of the earliest-arrived dispatchable request
        // serves; the dispatch policy then picks among the requests homed
        // to that board (a home board never serves foreign tenants, so
        // the reconfig-aware scan is restricted to its own backlog).
        PlacementPolicy::TenantAffine => {
            let board = queue.iter().find_map(|r| {
                let home = tenants[r.tenant].home_board(r.tenant, pool.size());
                pool.is_free(home).then_some(home)
            })?;
            let homed = |r: &Request| tenants[r.tenant].home_board(r.tenant, pool.size()) == board;
            let position =
                pick_for_board(tenants, cfg, queue, best_cache, pool, board, now, &homed)?;
            Some((position, board))
        }
        // The least-loaded free board serves; its dispatch policy picks
        // the request — with one board this is exactly the PR 1 scheduler.
        PlacementPolicy::LeastLoaded => {
            let board = pool.least_loaded_free()?;
            let position =
                pick_for_board(tenants, cfg, queue, best_cache, pool, board, now, &|_| true)?;
            Some((position, board))
        }
        // Route a request to a board already holding its bitstream. A
        // request whose bitstream lives on a *busy* board waits for it
        // (bounded by the starvation guard) instead of reprogramming an
        // idle board — that restraint is what turns reconfigurations into
        // routing decisions. Only a bitstream no board holds claims the
        // least-loaded free board and pays one switch.
        PlacementPolicy::BitstreamAffine => {
            let max_queue_delay_secs = match cfg.policy {
                // FIFO promises strict arrival order, so the affinity
                // scan must not overtake: placement only picks the front
                // request's board (a zero starvation bound).
                DispatchPolicy::Fifo => 0.0,
                DispatchPolicy::ReconfigAware {
                    max_queue_delay_secs,
                } => max_queue_delay_secs,
            };
            let front = &queue[0];
            if now - front.arrival_secs >= max_queue_delay_secs {
                let front_best = cached_best(
                    best_cache,
                    front.tenant,
                    &tenants[front.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                let board = pool
                    .free_with_config(front_best)
                    .or_else(|| pool.least_loaded_free())?;
                return Some((0, board));
            }
            // Pass 1: the earliest request whose optimal bitstream is
            // already programmed on a free board (with one board this is
            // exactly the PR 1 reconfig-aware queue scan).
            for (position, r) in queue.iter().enumerate() {
                let best = cached_best(
                    best_cache,
                    r.tenant,
                    &tenants[r.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                if let Some(board) = pool.free_with_config(best) {
                    return Some((position, board));
                }
            }
            // Pass 2: the earliest request whose bitstream no board holds
            // claims the least-loaded free board.
            for (position, r) in queue.iter().enumerate() {
                let best = cached_best(
                    best_cache,
                    r.tenant,
                    &tenants[r.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                if !pool.any_with_config(best) {
                    let board = pool.least_loaded_free()?;
                    return Some((position, board));
                }
            }
            // Every queued bitstream is held by a busy board: wait for it.
            None
        }
    }
}

/// The queue position `board` serves next under the configured dispatch
/// policy (PR 1's pick, parameterized by the board's bitstream), scanning
/// only requests `eligible` admits — `TenantAffine` placement restricts
/// the scan to the board's own tenants, everything else passes all.
/// `None` when no queued request is eligible.
#[allow(clippy::too_many_arguments)]
fn pick_for_board(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &VecDeque<Request>,
    best_cache: &mut [Option<(u64, HwConfig)>],
    pool: &BoardPool,
    board: usize,
    now: f64,
    eligible: &dyn Fn(&Request) -> bool,
) -> Option<usize> {
    let front_pos = queue.iter().position(eligible)?;
    match cfg.policy {
        DispatchPolicy::Fifo => Some(front_pos),
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs,
        } => {
            let front = &queue[front_pos];
            if now - front.arrival_secs >= max_queue_delay_secs {
                return Some(front_pos);
            }
            let current = pool.config(board);
            queue
                .iter()
                .enumerate()
                .filter(|(_, r)| eligible(r))
                .find(|(_, r)| {
                    cached_best(
                        best_cache,
                        r.tenant,
                        &tenants[r.tenant],
                        now,
                        cfg.drift_step_secs,
                        pool,
                    ) == current
                })
                .map(|(position, _)| position)
                .or(Some(front_pos))
        }
    }
}

/// The library-optimal configuration for a tenant's current drift bucket,
/// memoized per tenant. The workload (and its `powf` drift factors) is only
/// built on a bucket miss — the dispatch scan hits the cache for every
/// queued request inside a drift step. The cache is sound pool-wide: all
/// boards search the same bitstream library.
fn cached_best(
    cache: &mut [Option<(u64, HwConfig)>],
    index: usize,
    tenant: &TenantSpec,
    now: f64,
    step_secs: f64,
    pool: &BoardPool,
) -> HwConfig {
    let bucket = tenant.drift_bucket(now, step_secs);
    if let Some((cached_bucket, config)) = cache[index] {
        if cached_bucket == bucket {
            return config;
        }
    }
    let workload = tenant.workload_at(now, step_secs);
    let best = CostModel.choose_config(&workload, pool.library());
    cache[index] = Some((bucket, best));
    best
}

/// Runs one simulation over `tenants` with `config`.
pub fn simulate(tenants: Vec<TenantSpec>, config: ServeConfig) -> TrafficReport {
    let mut sim = TrafficSim::new(tenants, config);
    sim.run()
}

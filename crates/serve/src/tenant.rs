//! Tenants and their arrival processes.
//!
//! A tenant binds a Table II dataset, sampling parameters and a GNN spec to
//! a seeded arrival process. Tenants optionally *drift*: their graph grows
//! at the dataset's Table II daily rate (§III-A), shifting the workload the
//! cost model sees — which is what makes dispatch-policy choices matter
//! under sustained load.

use agnn_algo::pipeline::SampleParams;
use agnn_cost::Workload;
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seconds per simulated day (drift rates are quoted per day).
pub const SECS_PER_DAY: f64 = 86_400.0;

/// When requests arrive, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_rps` requests per second.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Sinusoidally-modulated Poisson arrivals — the day/night traffic
    /// cycle of a consumer service. Instantaneous rate:
    /// `mean_rps * (1 + amplitude * sin(2π (t + phase_secs) / period_secs))`.
    Diurnal {
        /// Mean arrival rate, requests per second.
        mean_rps: f64,
        /// Peak-to-mean modulation in `[0, 1)`.
        amplitude: f64,
        /// Cycle length in simulated seconds (86 400 for a day).
        period_secs: f64,
        /// Phase offset in seconds (shifts tenants' peaks apart).
        phase_secs: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous rate at simulated time `now`.
    pub fn rate_at(&self, now: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Diurnal {
                mean_rps,
                amplitude,
                period_secs,
                phase_secs,
            } => {
                let angle = std::f64::consts::TAU * (now + phase_secs) / period_secs;
                mean_rps * (1.0 + amplitude * angle.sin())
            }
        }
    }

    /// The peak instantaneous rate — the thinning envelope of
    /// [`next_after`](ArrivalProcess::next_after), and the simulator's
    /// estimate of a tenant's worst-case event rate when sizing its
    /// calendar-queue buckets.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Diurnal {
                mean_rps,
                amplitude,
                ..
            } => mean_rps * (1.0 + amplitude),
        }
    }

    /// Draws the next arrival after `now` (Lewis–Shedler thinning for the
    /// non-homogeneous case), deterministic in `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the process rate is not positive or the diurnal amplitude
    /// is not in `[0, 1)`.
    pub fn next_after(&self, now: f64, rng: &mut StdRng) -> f64 {
        if let ArrivalProcess::Diurnal { amplitude, .. } = *self {
            assert!(
                (0.0..1.0).contains(&amplitude),
                "amplitude {amplitude} must be in [0, 1)"
            );
        }
        let peak = self.peak_rate();
        assert!(peak > 0.0, "arrival rate must be positive");
        let mut t = now;
        loop {
            // Exponential inter-arrival at the envelope rate.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t -= u.ln() / peak;
            // Accept with probability rate(t)/peak.
            if rng.gen::<f64>() * peak <= self.rate_at(t) {
                return t;
            }
        }
    }
}

/// How a tenant's graph evolves over simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drift {
    /// The graph is frozen at its day-0 size.
    Static,
    /// Edges grow `daily_pct` percent per day, nodes at `node_share` of the
    /// edge rate (social/e-commerce graphs densify: nodes grow slower).
    Growth {
        /// Daily edge growth, in percent.
        daily_pct: f64,
        /// Node growth as a fraction of the edge rate, in `[0, 1]`.
        node_share: f64,
    },
}

impl Drift {
    /// Growth at the dataset's Table II daily rate, or [`Drift::Static`]
    /// when the paper records none.
    pub fn table_ii(dataset: Dataset) -> Drift {
        match dataset.spec().daily_growth_pct {
            Some(daily_pct) => Drift::Growth {
                daily_pct,
                node_share: 0.35,
            },
            None => Drift::Static,
        }
    }

    /// Edge/node multipliers at simulated time `now`.
    fn factors_at(&self, now: f64) -> (f64, f64) {
        match *self {
            Drift::Static => (1.0, 1.0),
            Drift::Growth {
                daily_pct,
                node_share,
            } => {
                let days = now / SECS_PER_DAY;
                let edge = (1.0 + daily_pct / 100.0).powf(days);
                let node = (1.0 + daily_pct / 100.0 * node_share).powf(days);
                (edge, node)
            }
        }
    }
}

/// One tenant of the serving deployment.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name ("feed-ranker", "fraud-screen", …).
    pub name: String,
    /// The Table II dataset backing the tenant's graph.
    pub dataset: Dataset,
    /// Down-scaling factor for the graph (1 = full Table II size).
    pub scale: u64,
    /// Sampling parameters of the tenant's queries.
    pub params: SampleParams,
    /// The GNN the sampled subgraphs feed.
    pub gnn: GnnSpec,
    /// Inference nodes per request.
    pub batch: u64,
    /// The tenant's arrival process.
    pub arrival: ArrivalProcess,
    /// How the tenant's graph drifts over the horizon.
    pub drift: Drift,
    /// Operator-pinned home board for `TenantAffine` placement; `None`
    /// hashes the tenant index over the pool.
    pub pinned_board: Option<usize>,
    /// Fair-queueing weight ([`crate::sched::SchedKind::WeightedFair`]):
    /// the tenant's share of dispatch service relative to other tenants.
    /// Must be positive and finite; 1.0 = an equal share.
    pub weight: f64,
    /// End-to-end p99 latency budget in seconds. Drives the
    /// [`crate::sched::SchedKind::SloAware`] reconfiguration gate (when
    /// `None`, that scheduler's default budget applies) and, whenever
    /// set, the per-tenant `slo_violations` counter in
    /// [`crate::metrics::TenantStats`] — which is recorded under *every*
    /// scheduler, so SLO attainment is comparable across policies.
    pub slo_secs: Option<f64>,
    /// Client abandonment deadline in seconds from arrival. When set (or
    /// when [`crate::sim::ServeConfig::default_deadline_secs`] supplies a
    /// pool-wide default), the lifecycle honors it: queued requests past
    /// their deadline are expired at scan time, not-yet-started pipeline
    /// stages are aborted, and completions slower than the deadline count
    /// as [`crate::metrics::RequestOutcome::ServedLate`] wasted work
    /// instead of goodput. `None` (the default) disables every deadline
    /// code path for this tenant.
    pub deadline_secs: Option<f64>,
}

impl TenantSpec {
    /// A tenant at Table II scale with Table III sampling, Poisson traffic
    /// and the dataset's recorded drift.
    pub fn new(name: impl Into<String>, dataset: Dataset, rate_rps: f64) -> Self {
        TenantSpec {
            name: name.into(),
            dataset,
            scale: 1,
            params: SampleParams::new(10, 2),
            gnn: GnnSpec::table_iii_default(),
            batch: 3_000,
            arrival: ArrivalProcess::Poisson { rate_rps },
            drift: Drift::table_ii(dataset),
            pinned_board: None,
            weight: 1.0,
            slo_secs: None,
            deadline_secs: None,
        }
    }

    /// The adversarial bursty-aggressor serving mix shared by the CI
    /// `wfq_burst` scenario, the scheduler fairness tests and the example
    /// fairness table: two well-behaved *victim* tenants offering steady
    /// Poisson traffic at `victim_rps` each, plus one **aggressor** whose
    /// near-total-amplitude diurnal bursts (`burst_rps` mean over
    /// `period_secs`, amplitude 0.98) periodically offer several times
    /// the pool's capacity. The aggressor's Taobao-scale graph also
    /// drifts at the Table II daily rate, so its bitstream choice keeps
    /// shifting — the trace where a shared FIFO queue lets one tenant's
    /// burst starve everyone ([`crate::sched::SchedKind::Fifo`]) and
    /// per-tenant quotas + deficit round robin do not
    /// ([`crate::sched::SchedKind::WeightedFair`]). Victims carry 4×
    /// fair-queueing weight (the operator values interactive traffic over
    /// the batch-y aggressor — and the aggressor's individual requests
    /// are several times more expensive, so equal per-request shares
    /// would still under-serve the victims) and a 1 s SLO budget so
    /// violation counts surface the damage.
    pub fn bursty_aggressor(victim_rps: f64, burst_rps: f64, period_secs: f64) -> Vec<TenantSpec> {
        let mut victim_feed = TenantSpec::new("victim-feed", Dataset::Movie, victim_rps);
        victim_feed.weight = 4.0;
        victim_feed.slo_secs = Some(1.0);
        let mut victim_fraud = TenantSpec::new("victim-fraud", Dataset::Fraud, victim_rps);
        victim_fraud.weight = 4.0;
        victim_fraud.slo_secs = Some(1.0);
        let mut aggressor = TenantSpec::new("aggressor", Dataset::Taobao, 0.0);
        aggressor.arrival = ArrivalProcess::Diurnal {
            mean_rps: burst_rps,
            amplitude: 0.98,
            period_secs,
            phase_secs: 0.0,
        };
        vec![victim_feed, victim_fraud, aggressor]
    }

    /// The memory-pressured serving mix shared by the CI `pipelined_drift`
    /// scenario, the pipelining integration test and the example headline:
    /// six Taobao-scale e-commerce regions (3.2 GB graphs, Table II drift)
    /// with evenly offset diurnal peaks of `mean_rps` each over
    /// `period_secs`. Their combined working set outgrows one board's DRAM
    /// graph budget, so LRU eviction forces the recurring cold re-uploads
    /// that staged pipelining hides behind fabric compute — keeping the
    /// gate, the test and the demo provably on the same trace.
    pub fn taobao_regions(mean_rps: f64, period_secs: f64) -> Vec<TenantSpec> {
        let names = ["tb-apac", "tb-eu", "tb-na", "tb-latam", "tb-mea", "tb-cn"];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut t = TenantSpec::new(*name, Dataset::Taobao, 0.0);
                t.arrival = ArrivalProcess::Diurnal {
                    mean_rps,
                    amplitude: 0.9,
                    period_secs,
                    phase_secs: period_secs * i as f64 / names.len() as f64,
                };
                t
            })
            .collect()
    }

    /// The skewed-load serving mix shared by the cross-board-migration
    /// comparison in `tests/serve_traffic.rs` and the example headline:
    /// one hot Taobao-scale region whose diurnal peak (`hot_mean_rps`
    /// mean, 0.9 amplitude over `period_secs`) saturates whichever board
    /// holds its bitstream, plus two light Poisson background tenants.
    /// Under `BitstreamAffine` placement the hot tenant's requests wait
    /// for that one busy board while its peers idle — exactly the
    /// behavior `MigratePolicy::SplitHot` exists to beat.
    pub fn skewed_hotspot(hot_mean_rps: f64, period_secs: f64) -> Vec<TenantSpec> {
        let mut hot = TenantSpec::new("hot-feed", Dataset::Taobao, 0.0);
        hot.arrival = ArrivalProcess::Diurnal {
            mean_rps: hot_mean_rps,
            amplitude: 0.9,
            period_secs,
            phase_secs: 0.0,
        };
        vec![
            hot,
            TenantSpec::new("bg-movies", Dataset::Movie, 0.5),
            TenantSpec::new("bg-papers", Dataset::Arxiv, 0.5),
        ]
    }

    /// The duplicate-heavy serving mix shared by the CI `cache_replay`
    /// scenario, the result-cache integration tests and the example
    /// cache table: three dashboard-style tenants re-issuing the *same*
    /// query against citation graphs the paper records no drift for
    /// ([`Drift::Static`] per Table II — Physics, Collab and Arxiv).
    /// Every request of a tenant is workload-identical, so once one
    /// completion fills the tenant's [`crate::cache::ResultCache`] entry
    /// it stays fresh forever; the offered rate is several times one
    /// board's service rate, so without the cache the queue (and p99)
    /// grows — exactly the recomputation the cache exists to delete.
    /// With [`crate::cache::CacheKind::Off`] the mix is an ordinary
    /// over-subscribed static-graph trace.
    pub fn replay_heavy(rate_rps: f64) -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("dash-physics", Dataset::Physics, rate_rps),
            TenantSpec::new("dash-collab", Dataset::Collab, rate_rps),
            TenantSpec::new("dash-arxiv", Dataset::Arxiv, rate_rps),
        ]
    }

    /// The board `TenantAffine` placement routes this tenant to in a pool
    /// of `pool_size` boards: the pinned board when set, otherwise the
    /// tenant index hashed over the pool.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero.
    pub fn home_board(&self, tenant_index: usize, pool_size: usize) -> usize {
        assert!(pool_size > 0, "pool must hold at least one board");
        match self.pinned_board {
            Some(board) => board % pool_size,
            None => tenant_index % pool_size,
        }
    }

    /// Base (day-0) node and edge counts after down-scaling.
    pub fn base_size(&self) -> (u64, u64) {
        let spec = self.dataset.spec();
        (
            (spec.nodes / self.scale).max(16),
            (spec.edges / self.scale).max(64),
        )
    }

    /// The cost-model workload the tenant presents at simulated time `now`,
    /// quantized to `step_secs` buckets so downstream bitstream-choice
    /// caches stay effective under drift.
    pub fn workload_at(&self, now: f64, step_secs: f64) -> Workload {
        let bucket = if step_secs > 0.0 {
            (now / step_secs).floor() * step_secs
        } else {
            now
        };
        let (n0, e0) = self.base_size();
        let (edge_f, node_f) = self.drift.factors_at(bucket);
        Workload::new(
            (n0 as f64 * node_f) as u64,
            (e0 as f64 * edge_f) as u64,
            self.batch,
            self.params.k as u64,
            self.params.layers,
        )
    }

    /// The drift bucket index at `now` (changes invalidate cached
    /// bitstream choices).
    pub fn drift_bucket(&self, now: f64, step_secs: f64) -> u64 {
        match self.drift {
            Drift::Static => 0,
            Drift::Growth { .. } if step_secs > 0.0 => (now / step_secs) as u64,
            Drift::Growth { .. } => now.to_bits(),
        }
    }

    /// The per-tenant RNG driving this tenant's arrivals, derived from the
    /// deployment seed so arrival streams are independent of dispatch
    /// order.
    pub fn arrival_rng(&self, deployment_seed: u64, index: usize) -> StdRng {
        StdRng::seed_from_u64(
            deployment_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_interarrivals_match_rate() {
        let process = ArrivalProcess::Poisson { rate_rps: 50.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            t = process.next_after(t, &mut rng);
        }
        let mean_gap = t / n as f64;
        assert!((mean_gap - 0.02).abs() < 0.002, "mean gap {mean_gap}");
    }

    #[test]
    fn diurnal_rate_oscillates_around_mean() {
        let process = ArrivalProcess::Diurnal {
            mean_rps: 10.0,
            amplitude: 0.8,
            period_secs: 1_000.0,
            phase_secs: 0.0,
        };
        assert!((process.rate_at(250.0) - 18.0).abs() < 1e-9, "peak at T/4");
        assert!(
            (process.rate_at(750.0) - 2.0).abs() < 1e-9,
            "trough at 3T/4"
        );
        assert!((process.rate_at(0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_arrivals_cluster_at_peak() {
        let process = ArrivalProcess::Diurnal {
            mean_rps: 5.0,
            amplitude: 0.9,
            period_secs: 1_000.0,
            phase_secs: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = 0.0;
        let (mut first_half, mut second_half) = (0u32, 0u32);
        while t < 10_000.0 {
            t = process.next_after(t, &mut rng);
            if (t % 1_000.0) < 500.0 {
                first_half += 1;
            } else {
                second_half += 1;
            }
        }
        assert!(
            first_half > second_half * 2,
            "rising half {first_half} vs falling half {second_half}"
        );
    }

    #[test]
    fn arrivals_are_deterministic_in_the_seed() {
        let tenant = TenantSpec::new("t", Dataset::Arxiv, 10.0);
        let sample = |seed| {
            let mut rng = tenant.arrival_rng(seed, 0);
            let mut t = 0.0;
            (0..100)
                .map(|_| {
                    t = tenant.arrival.next_after(t, &mut rng);
                    t
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn drift_grows_the_workload() {
        let mut tenant = TenantSpec::new("tb", Dataset::Taobao, 1.0);
        tenant.scale = 1_000;
        let day0 = tenant.workload_at(0.0, 3_600.0);
        let day30 = tenant.workload_at(30.0 * SECS_PER_DAY, 3_600.0);
        assert!(day30.edges > day0.edges, "TB grows 0.95%/day");
        // ~ (1.0095)^30 ≈ 1.33x.
        let ratio = day30.edges as f64 / day0.edges as f64;
        assert!((1.25..1.45).contains(&ratio), "30-day growth {ratio}");
    }

    #[test]
    fn static_datasets_do_not_drift() {
        let tenant = TenantSpec::new("ax", Dataset::Arxiv, 1.0);
        assert_eq!(tenant.drift, Drift::Static);
        let a = tenant.workload_at(0.0, 3_600.0);
        let b = tenant.workload_at(100.0 * SECS_PER_DAY, 3_600.0);
        assert_eq!(a.edges, b.edges);
        assert_eq!(tenant.drift_bucket(1e9, 3_600.0), 0);
    }

    #[test]
    fn home_board_hashes_unless_pinned() {
        let mut tenant = TenantSpec::new("t", Dataset::Movie, 1.0);
        assert_eq!(tenant.home_board(5, 4), 1);
        assert_eq!(tenant.home_board(5, 1), 0, "single board absorbs all");
        tenant.pinned_board = Some(7);
        assert_eq!(tenant.home_board(5, 4), 3, "pins wrap into the pool");
    }

    #[test]
    fn tenants_default_to_equal_weight_and_no_slo() {
        let tenant = TenantSpec::new("t", Dataset::Movie, 1.0);
        assert_eq!(tenant.weight, 1.0);
        assert_eq!(tenant.slo_secs, None);
        assert_eq!(tenant.deadline_secs, None, "deadlines are opt-in");
    }

    #[test]
    fn bursty_aggressor_fixture_is_adversarial_by_construction() {
        let tenants = TenantSpec::bursty_aggressor(2.0, 40.0, 900.0);
        assert_eq!(tenants.len(), 3);
        let (feed, fraud, aggressor) = (&tenants[0], &tenants[1], &tenants[2]);
        assert_eq!(feed.name, "victim-feed");
        assert_eq!(fraud.name, "victim-fraud");
        assert_eq!(aggressor.name, "aggressor");
        // Victims: steady Poisson load, 4x fair-queueing weight, a 1 s SLO.
        for victim in [feed, fraud] {
            assert_eq!(
                victim.arrival,
                ArrivalProcess::Poisson { rate_rps: 2.0 },
                "{}",
                victim.name
            );
            assert_eq!(victim.weight, 4.0);
            assert_eq!(victim.slo_secs, Some(1.0));
        }
        // The aggressor: near-total-amplitude bursts at many times the
        // victims' rate, unit weight, a drifting Taobao-scale graph.
        match aggressor.arrival {
            ArrivalProcess::Diurnal {
                mean_rps,
                amplitude,
                period_secs,
                ..
            } => {
                assert_eq!(mean_rps, 40.0);
                assert_eq!(amplitude, 0.98);
                assert_eq!(period_secs, 900.0);
            }
            other => panic!("aggressor must burst, got {other:?}"),
        }
        assert_eq!(aggressor.weight, 1.0);
        assert_ne!(aggressor.drift, Drift::Static, "the aggressor drifts");
        // Burst peak offers far more than the victims combined.
        assert!(aggressor.arrival.rate_at(225.0) > 70.0);
    }

    #[test]
    fn workload_quantization_is_stable_within_a_bucket() {
        let tenant = TenantSpec::new("tb", Dataset::Taobao, 1.0);
        let a = tenant.workload_at(100.0, 3_600.0);
        let b = tenant.workload_at(3_599.0, 3_600.0);
        assert_eq!(a, b, "same drift bucket, same workload");
    }
}

//! Perfetto / `chrome://tracing` trace-event JSON export.
//!
//! The writer renders the span stream as the Trace Event Format both
//! viewers load: one *process* per board (plus one for the admission
//! queue), one *thread* per board resource (DMA / fabric / ICAP), `"X"`
//! complete events for spans, `"C"` counter events for queue depth, DRAM
//! residency and result-cache hits, and `"s"`/`"t"`/`"f"` flow arrows stitching each
//! request's queue → ingest → preprocess → hand-off chain across tracks.
//!
//! All strings and floats go through the shared
//! [`crate::metrics::json_str`] / [`crate::metrics::json_f64`] encoders —
//! the same ones the report writer uses — so tenant names with quotes or
//! control characters cannot corrupt the document.

use std::collections::BTreeSet;

use crate::metrics::{json_f64, json_str};

use super::{BoardResource, CounterKind, CounterSample, Span, SpanKind, TraceSink, Track};

/// The admission queue's process id; boards are `board + BOARD_PID_BASE`.
const QUEUE_PID: u64 = 1;
const BOARD_PID_BASE: u64 = 2;

/// Streams [`Span`]s and [`CounterSample`]s into chrome trace-event JSON.
///
/// Metadata (process/thread names) is emitted lazily the first time a
/// track appears, so the document only names tracks that carry events.
/// [`ChromeTraceWriter::finish`] wraps everything into the final
/// `{"traceEvents":[...]}` object.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceWriter {
    events: Vec<String>,
    tenant_names: Vec<String>,
    named_pids: BTreeSet<u64>,
    named_tids: BTreeSet<(u64, u64)>,
}

impl ChromeTraceWriter {
    /// An empty writer; tenants render as `tenant-<index>`.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer labelling tenants with their display names
    /// (indices beyond `names` fall back to `tenant-<index>`).
    pub fn with_tenant_names(names: Vec<String>) -> Self {
        ChromeTraceWriter {
            tenant_names: names,
            ..Self::default()
        }
    }

    /// Number of events buffered so far (spans expand to several).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The finished trace-event JSON document.
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(64 + self.events.iter().map(String::len).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("]}");
        out
    }

    fn tenant_label(&self, tenant: usize) -> String {
        self.tenant_names
            .get(tenant)
            .cloned()
            .unwrap_or_else(|| format!("tenant-{tenant}"))
    }

    fn place(track: Track) -> (u64, u64) {
        match track {
            Track::Queue => (QUEUE_PID, 1),
            Track::Board { board, resource } => {
                let tid = match resource {
                    BoardResource::Dma => 1,
                    BoardResource::Fabric => 2,
                    BoardResource::Icap => 3,
                };
                (board as u64 + BOARD_PID_BASE, tid)
            }
        }
    }

    fn ensure_named(&mut self, track: Track) {
        let (pid, tid) = Self::place(track);
        if self.named_pids.insert(pid) {
            let pname = match track {
                Track::Queue => "admission".to_string(),
                Track::Board { board, .. } => format!("board {board}"),
            };
            self.events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
                json_str(&pname)
            ));
        }
        if self.named_tids.insert((pid, tid)) {
            let tname = match track {
                Track::Queue => "queue",
                Track::Board { resource, .. } => resource.name(),
            };
            self.events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_str(tname)
            ));
        }
    }

    /// The request-lifecycle flow arrow leg a span contributes, if any:
    /// the queue span starts the flow, ingest/migrate/preprocess step it,
    /// the hand-off — or a cancellation, which also ends a lifecycle —
    /// finishes it.
    fn flow_phase(kind: SpanKind) -> Option<&'static str> {
        match kind {
            SpanKind::Queue => Some("s"),
            SpanKind::Ingest | SpanKind::MigrateOut | SpanKind::Preprocess => Some("t"),
            SpanKind::Handoff | SpanKind::Cancelled => Some("f"),
            SpanKind::Reconfig => None,
        }
    }
}

impl TraceSink for ChromeTraceWriter {
    fn span(&mut self, span: Span) {
        self.ensure_named(span.track);
        let (pid, tid) = Self::place(span.track);
        let ts = json_f64(span.begin_secs * 1e6);
        let dur = json_f64(span.duration_secs() * 1e6);
        let tenant = json_str(&self.tenant_label(span.tenant));
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"args\":{{\"tenant\":{tenant},\"request\":{}}}}}",
            json_str(span.kind.name()),
            span.request
        ));
        if let Some(ph) = Self::flow_phase(span.kind) {
            // `bp:"e"` binds the terminating arrow to the enclosing slice.
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            self.events.push(format!(
                "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"{ph}\",\"id\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts}{bp}}}",
                span.request
            ));
        }
    }

    fn counter(&mut self, sample: CounterSample) {
        let (track, name, field) = match sample.kind {
            CounterKind::QueueDepth => (Track::Queue, "queue_depth", "depth"),
            CounterKind::ResidentBytes { board } => (
                Track::Board {
                    board,
                    resource: BoardResource::Dma,
                },
                "resident_bytes",
                "bytes",
            ),
            CounterKind::CacheHits => (Track::Queue, "cache_hits", "hits"),
            CounterKind::WastedWork => (Track::Queue, "wasted_work_bytes", "bytes"),
        };
        self.ensure_named(track);
        let (pid, _) = Self::place(track);
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\
             \"args\":{{\"{field}\":{}}}}}",
            json_f64(sample.time_secs * 1e6),
            json_f64(sample.value)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, track: Track) -> Span {
        Span {
            track,
            kind,
            tenant: 0,
            request: 42,
            begin_secs: 1.0,
            end_secs: 2.5,
        }
    }

    #[test]
    fn spans_render_as_complete_events_with_flow_arrows() {
        let mut w = ChromeTraceWriter::with_tenant_names(vec!["feed \"a\"".to_string()]);
        w.span(span(SpanKind::Queue, Track::Queue));
        w.span(span(
            SpanKind::Ingest,
            Track::Board {
                board: 0,
                resource: BoardResource::Dma,
            },
        ));
        w.span(span(
            SpanKind::Handoff,
            Track::Board {
                board: 0,
                resource: BoardResource::Dma,
            },
        ));
        let doc = w.finish();
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"queue\""));
        assert!(doc.contains("\"name\":\"ingest\""));
        assert!(doc.contains("\"ts\":1000000"), "seconds become µs: {doc}");
        assert!(doc.contains("\"dur\":1500000"), "{doc}");
        // Flow chain: start on the queue span, step on ingest, finish on
        // the hand-off (bound to the enclosing slice).
        assert!(doc.contains("\"ph\":\"s\",\"id\":42"));
        assert!(doc.contains("\"ph\":\"t\",\"id\":42"));
        assert!(doc.contains("\"ph\":\"f\",\"id\":42"));
        assert!(doc.contains("\"bp\":\"e\""));
        // Tenant names run through the shared escaper.
        assert!(doc.contains("feed \\\"a\\\""));
        assert!(!doc.contains(",}"), "no trailing commas: {doc}");
    }

    #[test]
    fn metadata_names_each_track_once() {
        let mut w = ChromeTraceWriter::new();
        let dma = Track::Board {
            board: 1,
            resource: BoardResource::Dma,
        };
        let icap = Track::Board {
            board: 1,
            resource: BoardResource::Icap,
        };
        w.span(span(SpanKind::Ingest, dma));
        w.span(span(SpanKind::Ingest, dma));
        w.span(span(SpanKind::Reconfig, icap));
        let doc = w.finish();
        assert_eq!(doc.matches("\"name\":\"process_name\"").count(), 1);
        assert_eq!(doc.matches("\"name\":\"thread_name\"").count(), 2);
        assert!(doc.contains("\"name\":\"board 1\""));
        assert!(doc.contains("\"name\":\"dma\""));
        assert!(doc.contains("\"name\":\"icap\""));
        // Reconfig spans carry no flow arrow.
        assert!(!doc.contains("\"ph\":\"s\""));
        assert!(!doc.contains("\"ph\":\"f\""));
        // Unnamed tenants fall back to an index label.
        assert!(doc.contains("\"tenant\":\"tenant-0\""));
    }

    #[test]
    fn counters_render_on_their_process() {
        let mut w = ChromeTraceWriter::new();
        w.counter(CounterSample {
            kind: CounterKind::QueueDepth,
            time_secs: 0.5,
            value: 3.0,
        });
        w.counter(CounterSample {
            kind: CounterKind::ResidentBytes { board: 2 },
            time_secs: 1.0,
            value: 1e9,
        });
        w.counter(CounterSample {
            kind: CounterKind::CacheHits,
            time_secs: 1.5,
            value: 7.0,
        });
        let doc = w.finish();
        assert!(doc.contains("\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":1"));
        assert!(doc.contains("\"name\":\"resident_bytes\",\"ph\":\"C\",\"pid\":4"));
        assert!(doc.contains("\"depth\":3"));
        assert!(doc.contains("\"bytes\":1000000000"));
        // The cache counter rides the admission process's track.
        assert!(doc.contains("\"name\":\"cache_hits\",\"ph\":\"C\",\"pid\":1"));
        assert!(doc.contains("\"hits\":7"));
    }

    #[test]
    fn cancelled_spans_terminate_the_flow_and_wasted_work_counts() {
        let mut w = ChromeTraceWriter::new();
        w.span(span(SpanKind::Cancelled, Track::Queue));
        w.counter(CounterSample {
            kind: CounterKind::WastedWork,
            time_secs: 2.0,
            value: 4096.0,
        });
        let doc = w.finish();
        assert!(doc.contains("\"name\":\"cancelled\""));
        assert!(
            doc.contains("\"ph\":\"f\",\"id\":42"),
            "abort ends the flow"
        );
        assert!(doc.contains("\"name\":\"wasted_work_bytes\",\"ph\":\"C\",\"pid\":1"));
        assert!(doc.contains("\"bytes\":4096"));
    }

    #[test]
    fn empty_writer_finishes_to_a_valid_document() {
        let doc = ChromeTraceWriter::new().finish();
        assert_eq!(doc, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}

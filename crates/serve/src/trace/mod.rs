//! Flight-recorder tracing for the traffic simulator.
//!
//! # The span model
//!
//! The event loop in [`crate::sim`] narrates every request's lifecycle as
//! **complete spans** — the simulator is analytic, so a stage's begin and
//! end are both known the moment it is scheduled — emitted into a
//! [`TraceSink`]:
//!
//! - **Queue span** ([`Track::Queue`], one per dispatched request):
//!   arrival → dispatch. This is the share of latency the admission
//!   scheduler controls (see [`crate::sched`]); queued requests overlap
//!   freely on this track.
//! - **Board-resource spans** ([`Track::Board`], one track per board
//!   resource): the DMA engine ([`BoardResource::Dma`] — ingest, subgraph
//!   hand-off, or the outbound leg of a migration), the fabric
//!   ([`BoardResource::Fabric`] — preprocessing), and the ICAP
//!   ([`BoardResource::Icap`] — reconfiguration stalls). Each resource
//!   admits at most one request at a time, so **spans on one board
//!   resource track never overlap** — the non-overlap invariant the
//!   property tests pin.
//! - **Counter samples** ([`CounterSample`]): aggregate admission-queue
//!   depth at every transition, per-board resident DRAM bytes at every
//!   dispatch, and — with the result cache on — cumulative cache hits at
//!   every cache-served request.
//!
//! Spans carry the tenant index and a per-run monotone request id, so a
//! request's arrival → queue → ingest → preprocess → hand-off chain can
//! be stitched back together (the [`chrome::ChromeTraceWriter`] renders
//! it as Perfetto flow arrows).
//!
//! # The NullSink digest-equivalence invariant
//!
//! Tracing is observation, not simulation: a [`TraceSink`] is write-only
//! and feeds nothing back into the event loop, so **any** sink — including
//! the default zero-cost [`NullSink`] — leaves the schedule, the report
//! and the pinned golden trace digests bit-for-bit unchanged.
//! [`TraceSink::enabled`] lets the hot path skip even the argument
//! construction for [`NullSink`]; `tests/serve_traffic.rs` proptests that
//! a [`recorder::FlightRecorder`]-instrumented run reproduces the
//! untraced report exactly.

pub mod chrome;
pub mod recorder;

pub use chrome::ChromeTraceWriter;
pub use recorder::FlightRecorder;

/// One of a board's three serially-reusable resources, each its own
/// trace track (see the [module docs](self) for the non-overlap
/// invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoardResource {
    /// The PCIe DMA engine: graph-delta ingests, subgraph hand-offs, and
    /// outbound migration legs.
    Dma,
    /// The preprocessing fabric (UPE + SCR).
    Fabric,
    /// The ICAP reconfiguration port.
    Icap,
}

impl BoardResource {
    /// Stable lowercase identifier used as the Perfetto thread name.
    pub fn name(&self) -> &'static str {
        match self {
            BoardResource::Dma => "dma",
            BoardResource::Fabric => "fabric",
            BoardResource::Icap => "icap",
        }
    }
}

/// The track a span lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The shared admission queue (spans overlap freely here).
    Queue,
    /// One board resource (spans never overlap within one track).
    Board {
        /// Board index.
        board: usize,
        /// Which of the board's resources.
        resource: BoardResource,
    },
}

/// What a span's interval meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Waiting in the admission queue (arrival → dispatch).
    Queue,
    /// An ICAP reconfiguration stall.
    Reconfig,
    /// A host→board (or switch→board) graph-delta upload on the DMA
    /// engine.
    Ingest,
    /// Fabric preprocessing.
    Preprocess,
    /// The board→GPU subgraph hand-off on the DMA engine.
    Handoff,
    /// The outbound switch leg of a migration holding the **source**
    /// board's DMA engine.
    MigrateOut,
    /// A request cancelled after dispatch — a deadline-expired stage
    /// abort or the losing leg of a hedged dispatch. The interval runs
    /// dispatch → cancellation, so its length is the work the
    /// cancellation wrote off.
    Cancelled,
}

impl SpanKind {
    /// Stable lowercase identifier used as the Perfetto event name.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Reconfig => "reconfig",
            SpanKind::Ingest => "ingest",
            SpanKind::Preprocess => "preprocess",
            SpanKind::Handoff => "handoff",
            SpanKind::MigrateOut => "migrate_out",
            SpanKind::Cancelled => "cancelled",
        }
    }
}

/// One completed lifecycle stage of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The track this span occupies.
    pub track: Track,
    /// What the interval meant.
    pub kind: SpanKind,
    /// Tenant index (declaration order).
    pub tenant: usize,
    /// Per-run monotone request id (assigned at dispatch), linking all of
    /// one request's spans across tracks.
    pub request: u64,
    /// Interval start in simulated seconds.
    pub begin_secs: f64,
    /// Interval end in simulated seconds (`>= begin_secs`).
    pub end_secs: f64,
}

impl Span {
    /// Span length in simulated seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.begin_secs
    }
}

/// Which counter a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterKind {
    /// Aggregate admission-queue depth across the scheduler's queues
    /// (one shared queue under FIFO, the per-tenant sum under weighted
    /// fair queueing).
    QueueDepth,
    /// Total graph bytes resident in one board's DRAM.
    ResidentBytes {
        /// Board index.
        board: usize,
    },
    /// Cumulative result-cache hits (full + partial), sampled after every
    /// cache-served request. Only emitted when
    /// [`crate::cache::CacheKind`] is not `Off`.
    CacheHits,
    /// Cumulative wasted-work bytes (aborted stages, hedge-loser legs and
    /// past-deadline completions), sampled at every write-off. Only
    /// emitted when some tenant carries a deadline or hedging is on.
    WastedWork,
}

/// One counter observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Which counter.
    pub kind: CounterKind,
    /// Sample time in simulated seconds.
    pub time_secs: f64,
    /// Counter value at `time_secs`.
    pub value: f64,
}

/// Where the event loop narrates spans and counters to.
///
/// Sinks are write-only: nothing an implementation does can change the
/// simulated schedule (the digest-equivalence invariant — see the
/// [module docs](self)).
pub trait TraceSink {
    /// `false` lets the emitter skip building spans entirely
    /// ([`NullSink`] returns `false`; everything else keeps the default).
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one completed span.
    fn span(&mut self, span: Span);

    /// Receives one counter sample.
    fn counter(&mut self, sample: CounterSample);
}

/// The zero-cost default sink: reports itself disabled, so the event
/// loop's emission sites compile down to a branch on a constant — the
/// untraced run is bit-for-bit the traced code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn span(&mut self, _span: Span) {}

    fn counter(&mut self, _sample: CounterSample) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.span(Span {
            track: Track::Queue,
            kind: SpanKind::Queue,
            tenant: 0,
            request: 0,
            begin_secs: 0.0,
            end_secs: 1.0,
        });
        sink.counter(CounterSample {
            kind: CounterKind::QueueDepth,
            time_secs: 0.0,
            value: 1.0,
        });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BoardResource::Dma.name(), "dma");
        assert_eq!(BoardResource::Fabric.name(), "fabric");
        assert_eq!(BoardResource::Icap.name(), "icap");
        assert_eq!(SpanKind::Queue.name(), "queue");
        assert_eq!(SpanKind::Reconfig.name(), "reconfig");
        assert_eq!(SpanKind::Ingest.name(), "ingest");
        assert_eq!(SpanKind::Preprocess.name(), "preprocess");
        assert_eq!(SpanKind::Handoff.name(), "handoff");
        assert_eq!(SpanKind::MigrateOut.name(), "migrate_out");
        assert_eq!(SpanKind::Cancelled.name(), "cancelled");
    }

    #[test]
    fn span_duration_is_end_minus_begin() {
        let span = Span {
            track: Track::Board {
                board: 2,
                resource: BoardResource::Fabric,
            },
            kind: SpanKind::Preprocess,
            tenant: 1,
            request: 7,
            begin_secs: 1.5,
            end_secs: 4.0,
        };
        assert!((span.duration_secs() - 2.5).abs() < 1e-12);
    }
}

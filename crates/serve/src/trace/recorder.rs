//! The bounded in-memory flight recorder.

use std::collections::VecDeque;

use super::{CounterSample, Span, TraceSink, Track};

/// Default span/counter capacity: enough for every span of a
/// 100k-request trace (≤ 5 spans per request) without unbounded growth.
const DEFAULT_CAPACITY: usize = 512 * 1024;

/// A bounded ring buffer of spans and counter samples for post-mortem
/// queries: when either buffer is full the **oldest** entry is evicted
/// (flight-recorder semantics — the crash you are debugging is at the
/// end of the tape), and the eviction counts are reported so a query
/// knows whether the window it cares about survived.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    spans: VecDeque<Span>,
    counters: VecDeque<CounterSample>,
    capacity: usize,
    dropped_spans: u64,
    dropped_counters: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` spans and `capacity`
    /// counter samples (the most recent ones win).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            spans: VecDeque::new(),
            counters: VecDeque::new(),
            capacity,
            dropped_spans: 0,
            dropped_counters: 0,
        }
    }

    /// The recorded spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// The recorded counter samples, oldest first.
    pub fn counters(&self) -> impl Iterator<Item = &CounterSample> {
        self.counters.iter()
    }

    /// Every retained span of one request, oldest first.
    pub fn spans_for_request(&self, request: u64) -> Vec<Span> {
        self.spans
            .iter()
            .filter(|s| s.request == request)
            .copied()
            .collect()
    }

    /// Every retained span on one track, oldest first.
    pub fn spans_on(&self, track: Track) -> Vec<Span> {
        self.spans
            .iter()
            .filter(|s| s.track == track)
            .copied()
            .collect()
    }

    /// Number of retained spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Counter samples evicted because the ring was full.
    pub fn dropped_counters(&self) -> u64 {
        self.dropped_counters
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceSink for FlightRecorder {
    fn span(&mut self, span: Span) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped_spans += 1;
        }
        self.spans.push_back(span);
    }

    fn counter(&mut self, sample: CounterSample) {
        if self.counters.len() == self.capacity {
            self.counters.pop_front();
            self.dropped_counters += 1;
        }
        self.counters.push_back(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BoardResource, CounterKind, SpanKind};
    use super::*;

    fn span(request: u64, track: Track, begin: f64) -> Span {
        Span {
            track,
            kind: SpanKind::Ingest,
            tenant: 0,
            request,
            begin_secs: begin,
            end_secs: begin + 1.0,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let mut rec = FlightRecorder::with_capacity(2);
        let dma = Track::Board {
            board: 0,
            resource: BoardResource::Dma,
        };
        for i in 0..5 {
            rec.span(span(i, dma, i as f64));
        }
        assert_eq!(rec.span_count(), 2);
        assert_eq!(rec.dropped_spans(), 3);
        let kept: Vec<u64> = rec.spans().map(|s| s.request).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted first");
    }

    #[test]
    fn queries_filter_by_request_and_track() {
        let mut rec = FlightRecorder::default();
        let dma = Track::Board {
            board: 0,
            resource: BoardResource::Dma,
        };
        let fabric = Track::Board {
            board: 0,
            resource: BoardResource::Fabric,
        };
        rec.span(span(1, dma, 0.0));
        rec.span(span(2, dma, 1.0));
        rec.span(span(1, fabric, 2.0));
        assert_eq!(rec.spans_for_request(1).len(), 2);
        assert_eq!(rec.spans_on(dma).len(), 2);
        assert_eq!(rec.spans_on(fabric).len(), 1);
        assert_eq!(rec.spans_on(Track::Queue).len(), 0);
        assert_eq!(rec.dropped_spans(), 0);
    }

    #[test]
    fn counter_ring_is_bounded_too() {
        let mut rec = FlightRecorder::with_capacity(2);
        for i in 0..4 {
            rec.counter(CounterSample {
                kind: CounterKind::QueueDepth,
                time_secs: i as f64,
                value: i as f64,
            });
        }
        assert_eq!(rec.counters().count(), 2);
        assert_eq!(rec.dropped_counters(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        FlightRecorder::with_capacity(0);
    }
}

//! Design-space exploration (the Fig. 23 study): sweep SCR slot/width
//! configurations for a low-degree citation graph and UPE width for a large
//! e-commerce graph, printing where each workload's optimum lands.
//!
//! ```text
//! cargo run --example design_space
//! ```

use agnn_devices::fpga::FpgaModel;
use autognn::prelude::*;

fn main() {
    let setup = EvalSetup::default();
    let fpga = FpgaModel::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    let library = BitstreamLibrary::for_floorplan(&plan);

    // (a) SCR sweep on AX: small degree -> slot count matters.
    let ax = Dataset::Arxiv.spec();
    let ax_workload = setup.workload(ax.nodes, ax.edges);
    println!("SCR ladder on AX (n = {}, e = {}):", ax.nodes, ax.edges);
    println!("{:>6} {:>7} {:>16}", "slots", "width", "reshaping (ms)");
    let upe = library.upe_variants()[6]; // the width-64 rung
    for &scr in library.scr_variants() {
        let report = fpga.analytic_report(&ax_workload, HwConfig { upe, scr });
        println!(
            "{:>6} {:>7} {:>16.3}",
            scr.slots,
            scr.width,
            fpga.stage_secs(&report).reshaping * 1e3
        );
    }

    // (b) UPE sweep on AM: ordering wants wide UPEs, selecting wants many.
    let am = Dataset::Amazon.spec();
    let am_workload = setup.workload(am.nodes, am.edges);
    println!("\nUPE ladder on AM (n = {}, e = {}):", am.nodes, am.edges);
    println!(
        "{:>6} {:>7} {:>14} {:>15} {:>12}",
        "count", "width", "ordering (ms)", "selecting (ms)", "total (ms)"
    );
    let scr = library.scr_variants()[1];
    for &upe in library.upe_variants() {
        let report = fpga.analytic_report(&am_workload, HwConfig { upe, scr });
        let secs = fpga.stage_secs(&report);
        println!(
            "{:>6} {:>7} {:>14.3} {:>15.3} {:>12.3}",
            upe.count,
            upe.width,
            secs.ordering * 1e3,
            secs.selecting * 1e3,
            secs.total() * 1e3
        );
    }

    let best = fpga.search(&am_workload, &plan, agnn_cost::SearchSpace::Full);
    println!(
        "\ntiming-aware optimum for AM: {} UPEs x {}, {} SCR slots x {}",
        best.upe.count, best.upe.width, best.scr.slots, best.scr.width
    );
}

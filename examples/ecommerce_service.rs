//! An e-commerce recommendation service (the Fig. 28/30 scenario): a
//! Taobao-like graph receives a continuous stream of purchase edges while
//! the service answers inference batches. AutoGNN keeps the graph resident
//! in device DRAM, uploads only the deltas, and reconfigures when the cost
//! model says the drifted graph deserves a different bitstream.
//!
//! ```text
//! cargo run --example ecommerce_service
//! ```

use agnn_graph::dynamic::{GrowthModel, UpdateStream};
use autognn::prelude::*;

fn main() {
    // Scaled-down Taobao-like graph: few nodes, huge degree.
    let base = Dataset::Taobao.generate_scaled(4_000, 3);
    println!(
        "day 0: {} nodes, {} edges (TB-like, deg {:.0})",
        base.num_vertices(),
        base.num_edges(),
        base.average_degree()
    );

    // 0.95%/day growth (Table II), strongly preferential.
    let growth = GrowthModel::new(base.num_edges() as u64, 0.0095);
    let mut stream = UpdateStream::new(base, growth, 0.8, 11);

    let params = SampleParams::new(10, 2);
    let mut service = AutoGnn::new(params);
    let batch: Vec<Vid> = (0..32).map(Vid).collect();

    println!(
        "\n{:>5} {:>10} {:>12} {:>12} {:>11} {:>9}",
        "day", "edges", "upload(us)", "preproc(us)", "subgraph", "reconfig"
    );
    for day in 0..10u32 {
        // A burst of new purchases arrives...
        let added = stream.advance();
        // ...and the service answers an inference batch.
        let record = service.serve(stream.graph(), &batch, u64::from(day));
        println!(
            "{:>5} {:>10} {:>12.1} {:>12.1} {:>11} {:>9}",
            day + 1,
            stream.graph().num_edges(),
            record.upload_secs * 1e6,
            record.stage_secs.total() * 1e6,
            record.output.subgraph.csc.num_vertices(),
            match record.reconfig {
                Some(event) => format!("{:.0}ms", event.seconds * 1e3),
                None => "-".to_string(),
            }
        );
        let _ = added;
    }

    println!(
        "\nOnly the update deltas cross PCIe after day 1 — the paper reports \
         AutoGNN cutting transfer volume 13.6x vs the GPU baseline (Fig. 20)."
    );
}

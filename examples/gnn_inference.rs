//! Full GNN inference comparison: run all four evaluated models (GIN,
//! GraphSAGE, GCN, GAT — §VI "Sensitivity on model parameters") over one
//! AutoGNN-preprocessed subgraph and compare their outputs and costs.
//!
//! ```text
//! cargo run --example gnn_inference
//! ```

use agnn_gnn::timing::GpuInferenceModel;
use autognn::prelude::*;

fn main() {
    let coo = agnn_graph::generate::power_law(2_000, 30_000, 1.0, 5);
    let params = SampleParams::new(10, 2);
    let batch: Vec<Vid> = (0..32).map(Vid).collect();

    let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
    let run = engine.preprocess(&coo, &batch, &params, 99);
    let sub = &run.output.subgraph;
    println!(
        "sampled subgraph: {} nodes, {} edges for {} batch nodes",
        sub.csc.num_vertices(),
        sub.csc.num_edges(),
        batch.len()
    );

    let dim = 64;
    let features = FeatureTable::random(coo.num_vertices(), dim, 21);
    let timing = GpuInferenceModel::default();

    println!(
        "\n{:>8} {:>12} {:>14} {:>16}",
        "model", "MFLOPs", "est. GPU (ms)", "embedding norm"
    );
    for model in GnnModel::ALL {
        let spec = GnnSpec::new(model, 2, dim, dim);
        let result = forward(&spec, sub, &features, 7);
        println!(
            "{:>8} {:>12.2} {:>14.3} {:>16.4}",
            model.name(),
            result.flops as f64 / 1e6,
            timing.inference_secs(model, result.flops) * 1e3,
            result.embeddings.frobenius_norm()
        );
    }

    println!(
        "\nModel order matches the paper's computational-intensity ordering; \
         preprocessing cost is identical for all four since AutoGNN's product \
         is model-agnostic."
    );
}

//! Multi-tenant serving under production-style load: four applications —
//! a movie recommender, a feed ranker, a fraud screen and a citation
//! explorer — share simulated VPK180s through the AutoGNN runtime.
//! Offset diurnal peaks make the dominant tenant (and therefore the
//! cost-model-optimal bitstream) drift through the day, which is exactly
//! the regime where §V-B's reconfiguration decision helps or hurts: the
//! FIFO scheduler pays an ICAP stall almost every time the mix shifts,
//! while the reconfig-aware scheduler serves same-bitstream requests
//! together and amortizes it.
//!
//! The second half shards the same trace across a **board pool**: four
//! boards behind one admission queue, with `BitstreamAffine` placement
//! routing each request to a board already holding its optimal bitstream.
//! That turns almost every reconfiguration into a routing decision — and
//! beats not just the single board, but a hypothetical single board with
//! 4× the preprocessing compute (whose ICAP and PCIe still run at
//! physical speed).
//!
//! The third act pipelines the request lifecycle itself (`overlap`): on a
//! memory-pressured pool — six Taobao-scale e-commerce regions whose
//! 3.2 GB graphs outgrow each board's DRAM, so LRU eviction forces
//! recurring cold re-uploads — the staged scheduler ingests the next
//! request's graph (double-buffered) and streams finished subgraphs out
//! while the fabric preprocesses, taking upload time off the dispatch
//! critical path.
//!
//! The fourth act migrates graphs **between boards** over the PCIe
//! switch: a DRAM-evicted tenant rehydrates from a peer board still
//! holding its graph instead of re-crossing the host link (slashing host
//! upload traffic), and a hot tenant whose home board's queue outgrows a
//! threshold proactively splits onto an idle board instead of waiting
//! (slashing the tail).
//!
//! The fifth act turns on the **result cache**: on a duplicate-heavy
//! dashboard trace (three tenants replaying the identical query against
//! static citation graphs) a fresh, board-resident entry serves repeats
//! at lookup cost, duplicates of an in-flight request coalesce onto it,
//! and delta-driven invalidation keeps drifting graphs honest — the
//! cache-stats table prints hit-rate, coalesced count and the
//! recompute-seconds the pool never had to spend.
//!
//! The finale swaps the **scheduler**: on a bursty-aggressor trace (two
//! steady interactive victims plus one tenant whose bursts offer several
//! times the pool's capacity) the shared FIFO queue lets the aggressor
//! starve everyone, weighted fair queueing (per-tenant quotas + deficit
//! round robin) holds the victims near their isolated latency, and the
//! SLO-aware gate stops paying reconfigurations nobody's tail needs.
//!
//! ```text
//! cargo run --release --example multi_tenant_serve
//! # just the scheduler fairness act, one policy:
//! cargo run --release --example multi_tenant_serve -- --scheduler wfq
//! # just the result-cache act, one cache mode vs off:
//! cargo run --release --example multi_tenant_serve -- --cache delta
//! # same, plus a Perfetto / chrome://tracing dump of the run
//! # (load the file at https://ui.perfetto.dev):
//! cargo run --release --example multi_tenant_serve -- \
//!     --scheduler wfq --trace-out wfq_trace.json
//! ```
//!
//! `--trace-out` without `--scheduler` traces the weighted-fair run.
//! Every focused run also prints the report's **stall attribution** —
//! the end-to-end latency of all completed requests partitioned into
//! queue-wait / reconfig / DMA / fabric / hand-off / cache — next to the
//! fairness table, so "which stage eats the latency under this
//! scheduler" is readable without opening the trace.

use agnn_graph::datasets::Dataset;
use agnn_serve::pool::{MigratePolicy, PlacementPolicy};
use agnn_serve::sched::SchedKind;
use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig, TrafficSim};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::{CacheKind, ChromeTraceWriter, TrafficReport};

/// One simulated "day" of the demo, compressed to keep the replay short.
const PERIOD_SECS: f64 = 900.0;

fn tenants() -> Vec<TenantSpec> {
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: PERIOD_SECS,
        phase_secs: PERIOD_SECS * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(14.0, 0.00);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(14.0, 0.50); // peaks opposite the recommender
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(8.0, 0.25);
    let mut papers = TenantSpec::new("papers", Dataset::Arxiv, 0.0);
    papers.arrival = diurnal(6.0, 0.75);
    vec![movies, feed, fraud, papers]
}

fn p99(r: &TrafficReport) -> f64 {
    r.overall_latency().quantile(0.99)
}

fn p50(r: &TrafficReport) -> f64 {
    r.overall_latency().quantile(0.50)
}

const USAGE: &str = "usage: multi_tenant_serve [--scheduler fifo|wfq|slo] \
                     [--cache off|exact|delta] [--trace-out <file>]";

/// Parsed command line: an optional scheduler restricting the run to the
/// fairness act, an optional cache mode restricting it to the cache act,
/// and an optional Perfetto trace destination.
struct Flags {
    scheduler: Option<SchedKind>,
    cache: Option<CacheKind>,
    trace_out: Option<String>,
}

/// Parses `--scheduler fifo|wfq|slo`, `--cache off|exact|delta` and
/// `--trace-out <file>`. A scheduler (or `--trace-out` alone, which
/// defaults it to weighted-fair) selects the focused fairness act;
/// `--cache` selects the focused result-cache act; no flags play the
/// full demo.
fn parse_flags() -> Flags {
    let mut flags = Flags {
        scheduler: None,
        cache: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    let fail = |message: String| -> ! {
        eprintln!("{message}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scheduler" => match args.next().as_deref() {
                Some("fifo") => flags.scheduler = Some(SchedKind::Fifo),
                Some("wfq") => flags.scheduler = Some(SchedKind::weighted_fair()),
                Some("slo") => flags.scheduler = Some(SchedKind::slo_aware()),
                other => fail(format!(
                    "--scheduler must be fifo|wfq|slo, got {:?}",
                    other.unwrap_or("<missing>")
                )),
            },
            "--cache" => match args.next().as_deref() {
                Some("off") => flags.cache = Some(CacheKind::Off),
                Some("exact") => flags.cache = Some(CacheKind::Exact),
                Some("delta") => flags.cache = Some(CacheKind::delta()),
                other => fail(format!(
                    "--cache must be off|exact|delta, got {:?}",
                    other.unwrap_or("<missing>")
                )),
            },
            "--trace-out" => match args.next() {
                Some(path) => flags.trace_out = Some(path),
                None => fail("--trace-out requires a file path".to_string()),
            },
            other => fail(format!("unknown flag {other}")),
        }
    }
    flags
}

/// Prints the per-tenant fairness table of one bursty-aggressor run.
fn fairness_table(label: &str, r: &TrafficReport) {
    println!("\n--- bursty aggressor, scheduler = {label} ---");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>13} {:>10} {:>9}",
        "tenant", "completed", "dropped", "drop%", "q-wait p99(ms)", "p99(ms)", "slo-viol"
    );
    for t in &r.tenants {
        println!(
            "{:<14} {:>9} {:>8} {:>7.2}% {:>13.1} {:>10.1} {:>9}",
            t.name,
            t.completed,
            t.dropped,
            t.drop_rate() * 100.0,
            t.queue_wait.quantile(0.99) * 1e3,
            t.latency.quantile(0.99) * 1e3,
            t.slo_violations,
        );
    }
    println!(
        "reconfigs {} | overall p99 {:.1} ms | {:.1} req/s",
        r.reconfigs,
        r.overall_latency().quantile(0.99) * 1e3,
        r.throughput_rps(),
    );
}

/// Prints the aggregate stall attribution of one run: the end-to-end
/// latency of every completed request, partitioned *exactly* into the
/// six lifecycle components ([`agnn_serve::StallBreakdown`] — the six
/// always sum to the total, which is what makes the percentages
/// trustworthy).
fn stall_table(r: &TrafficReport) {
    let s = &r.stall;
    let total = s.total();
    if total <= 0.0 {
        return;
    }
    println!(
        "stall attribution ({total:.1} request-seconds across {} completed):",
        r.completed()
    );
    for (name, secs) in [
        ("queue-wait", s.queue_secs),
        ("reconfig", s.reconfig_secs),
        ("dma", s.dma_secs),
        ("fabric", s.fabric_secs),
        ("hand-off", s.handoff_secs),
        ("cache", s.cache_secs),
    ] {
        println!(
            "  {name:<10} {secs:>10.1} s  {:>5.1}%",
            secs / total * 100.0
        );
    }
}

/// Prints the cache-stats table of one run: classification counters,
/// hit-rate, coalesced duplicates and the recompute-seconds the boards
/// never had to spend.
fn cache_table(label: &str, r: &TrafficReport) {
    let c = &r.cache;
    println!("\n--- replay-heavy dashboards, cache = {label} ---");
    println!(
        "{:<14} {:>9} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "tenant", "completed", "hits", "partial", "misses", "coalesc", "p99(ms)"
    );
    for t in &r.tenants {
        println!(
            "{:<14} {:>9} {:>8} {:>9} {:>8} {:>8} {:>9.1}",
            t.name,
            t.completed,
            t.cache_hits,
            t.cache_partial_hits,
            t.cache_misses,
            t.cache_coalesced,
            t.latency.quantile(0.99) * 1e3,
        );
    }
    println!(
        "hit-rate {:.1}% | {} coalesced | {} invalidations | {:.1} s recompute saved | \
         overall p99 {:.1} ms",
        c.hit_rate() * 100.0,
        c.coalesced,
        c.invalidations,
        c.recompute_secs_saved,
        p99(r) * 1e3,
    );
}

/// The result-cache act: the duplicate-heavy dashboard trace
/// ([`TenantSpec::replay_heavy`] — static citation graphs, every request
/// of a tenant workload-identical) replayed with the cache off and in
/// the requested mode(s), with the cache-stats and stall tables for
/// each. The off run is the yardstick the hit-rate and p99 deltas are
/// quoted against.
fn cache_act(seed: u64, requests: u64, only: Option<CacheKind>) {
    let run = |cache| {
        simulate(
            TenantSpec::replay_heavy(3.0),
            ServeConfig::reconfig_aware()
                .to_builder()
                .seed(seed)
                .total_requests(requests)
                .queue_capacity(512)
                .cache(cache)
                .build()
                .expect("demo config is valid"),
        )
    };
    let off = run(CacheKind::Off);
    cache_table(CacheKind::Off.name(), &off);
    stall_table(&off);
    let kinds = match only {
        Some(CacheKind::Off) => vec![],
        Some(kind) => vec![kind],
        None => vec![CacheKind::Exact, CacheKind::delta()],
    };
    for kind in kinds {
        let r = run(kind);
        cache_table(kind.name(), &r);
        stall_table(&r);
        assert!(
            r.cache.hit_rate() > 0.5,
            "static replays must mostly hit: rate {}",
            r.cache.hit_rate()
        );
        assert!(
            p99(&r) < p99(&off),
            "the cache must cut p99 on the replay trace: {} vs {}",
            p99(&r),
            p99(&off)
        );
        println!(
            "\n{} cache cut p99 by {:.0}% at a {:.1}% hit-rate and saved {:.1} s of recompute",
            kind.name(),
            (1.0 - p99(&r) / p99(&off)) * 100.0,
            r.cache.hit_rate() * 100.0,
            r.cache.recompute_secs_saved,
        );
    }
}

/// The scheduler fairness act: the bursty-aggressor trace under the
/// requested scheduler(s), with the victims' isolated run as the
/// yardstick. With `trace_out` set (focused mode only), the run is
/// replayed through a [`ChromeTraceWriter`] and the Perfetto JSON lands
/// at that path.
fn scheduler_act(
    seed: u64,
    requests: u64,
    period_secs: f64,
    only: Option<SchedKind>,
    trace_out: Option<&str>,
) {
    let burst = || TenantSpec::bursty_aggressor(2.0, 40.0, period_secs);
    // Strict scan-order dispatch: the fair schedule *is* the order.
    let config = |scheduler| {
        ServeConfig::weighted_fair()
            .to_builder()
            .seed(seed)
            .total_requests(requests)
            .queue_capacity(512)
            .boards(2)
            .scheduler(scheduler)
            .build()
            .expect("demo config is valid")
    };
    let isolated = simulate(
        burst().into_iter().take(2).collect(),
        config(SchedKind::Fifo),
    );
    println!(
        "\nisolated victims (aggressor absent): feed p99 {:.1} ms | fraud p99 {:.1} ms",
        isolated.tenants[0].latency.quantile(0.99) * 1e3,
        isolated.tenants[1].latency.quantile(0.99) * 1e3,
    );

    let kinds: Vec<SchedKind> = match only {
        Some(kind) => vec![kind],
        None => vec![
            SchedKind::Fifo,
            SchedKind::weighted_fair(),
            SchedKind::slo_aware(),
        ],
    };
    let mut runs = Vec::new();
    for kind in &kinds {
        let mix = burst();
        let r = if let Some(path) = trace_out {
            // The traced replay is the identical simulation — sinks are
            // write-only, so the fairness numbers below are unchanged.
            let names = mix.iter().map(|t| t.name.clone()).collect();
            let mut writer = ChromeTraceWriter::with_tenant_names(names);
            let r = TrafficSim::new(mix, config(*kind)).run_traced(&mut writer);
            let events = writer.event_count();
            if let Err(e) = std::fs::write(path, writer.finish()) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "wrote Perfetto trace to {path} ({events} events — load at \
                 https://ui.perfetto.dev or chrome://tracing)"
            );
            r
        } else {
            simulate(mix, config(*kind))
        };
        fairness_table(kind.name(), &r);
        stall_table(&r);
        runs.push((*kind, r));
    }

    if only.is_none() {
        let by = |name: &str| &runs.iter().find(|(k, _)| k.name() == name).unwrap().1;
        let (fifo, wfq) = (by("fifo"), by("wfq"));
        for v in 0..2 {
            let iso = isolated.tenants[v].latency.quantile(0.99);
            let fair = wfq.tenants[v].latency.quantile(0.99);
            let shared = fifo.tenants[v].latency.quantile(0.99);
            // ~2.2x observed; the residue is head-of-line blocking behind
            // the aggressor request already in service (no preemption).
            assert!(
                fair < iso * 2.5,
                "WFQ must hold {} within ~2x of its isolated p99: {fair} vs {iso}",
                wfq.tenants[v].name
            );
            assert!(
                shared > fair * 10.0,
                "FIFO must blow the victim tail up where WFQ does not"
            );
            assert_eq!(wfq.tenants[v].dropped, 0, "quotas protect victim backlog");
        }
        println!(
            "\nWFQ held victim p99 within {:.1}x / {:.1}x of the isolated run \
             (FIFO: {:.0}x / {:.0}x) and cut victim drops {} -> 0",
            wfq.tenants[0].latency.quantile(0.99) / isolated.tenants[0].latency.quantile(0.99),
            wfq.tenants[1].latency.quantile(0.99) / isolated.tenants[1].latency.quantile(0.99),
            fifo.tenants[0].latency.quantile(0.99) / isolated.tenants[0].latency.quantile(0.99),
            fifo.tenants[1].latency.quantile(0.99) / isolated.tenants[1].latency.quantile(0.99),
            fifo.tenants[0].dropped + fifo.tenants[1].dropped,
        );
    }
}

fn main() {
    const SEED: u64 = 2_026;
    const REQUESTS: u64 = 120_000;
    let flags = parse_flags();
    if let Some(kind) = flags.cache {
        // Focused mode: just the result-cache act, one mode vs off.
        println!(
            "replaying {REQUESTS} duplicate-heavy dashboard requests (seed {SEED}, cache {})",
            kind.name()
        );
        cache_act(SEED, REQUESTS, Some(kind));
        return;
    }
    if flags.scheduler.is_some() || flags.trace_out.is_some() {
        // Focused mode: just the fairness act under one scheduler
        // (`--trace-out` alone traces the weighted-fair run).
        let kind = flags.scheduler.unwrap_or_else(SchedKind::weighted_fair);
        println!(
            "replaying {REQUESTS} bursty-aggressor requests (seed {SEED}, scheduler {})",
            kind.name()
        );
        scheduler_act(
            SEED,
            REQUESTS,
            PERIOD_SECS,
            Some(kind),
            flags.trace_out.as_deref(),
        );
        return;
    }
    let config = |policy| {
        ServeConfig::builder()
            .seed(SEED)
            .total_requests(REQUESTS)
            .queue_capacity(512)
            .policy(policy)
            .build()
            .expect("demo config is valid")
    };

    println!(
        "replaying {REQUESTS} requests across {} tenants (seed {SEED})\n",
        tenants().len()
    );

    let fifo = simulate(tenants(), config(DispatchPolicy::Fifo));
    println!("--- FIFO dispatch, 1 board ---");
    print!("{fifo}");

    let aware = simulate(tenants(), config(DispatchPolicy::reconfig_aware()));
    println!("\n--- reconfig-aware dispatch, 1 board ---");
    print!("{aware}");

    println!("\n--- comparison (1 board) ---");
    println!(
        "p50 {:.1} ms -> {:.1} ms | p99 {:.1} ms -> {:.1} ms | reconfigs {} -> {}",
        p50(&fifo) * 1e3,
        p50(&aware) * 1e3,
        p99(&fifo) * 1e3,
        p99(&aware) * 1e3,
        fifo.reconfigs,
        aware.reconfigs,
    );

    // Reproducibility: the replay is bit-stable under the fixed seed.
    let again = simulate(tenants(), config(DispatchPolicy::Fifo));
    assert_eq!(
        again.trace_digest, fifo.trace_digest,
        "deterministic replay"
    );

    // The drift-heavy trace is where bitstream-aware scheduling pays.
    assert!(
        aware.reconfigs < fifo.reconfigs,
        "reconfig-aware must amortize reconfigurations"
    );
    assert!(
        p99(&aware) < p99(&fifo),
        "reconfig-aware must beat FIFO on p99 under drift: {} vs {}",
        p99(&aware),
        p99(&fifo)
    );
    println!(
        "\nreconfig-aware dispatch cut p99 by {:.0}% and reconfigurations by {:.0}%",
        (1.0 - p99(&aware) / p99(&fifo)) * 100.0,
        (1.0 - aware.reconfigs as f64 / fifo.reconfigs as f64) * 100.0,
    );

    // ----- Board-pool sharding: the same trace, four boards ------------

    // A hypothetical single board with 4x the preprocessing compute —
    // ICAP reprogramming and PCIe still run at physical speed, so the
    // tenant mix still forces a stall every time it shifts.
    let fast = simulate(
        tenants(),
        config(DispatchPolicy::reconfig_aware())
            .to_builder()
            .compute_speedup(4.0)
            .build()
            .expect("demo config is valid"),
    );
    println!("\n--- reconfig-aware dispatch, 1 board with 4x compute ---");
    print!("{fast}");

    // Four real boards behind one admission queue: BitstreamAffine
    // placement routes each request to a board already programmed with
    // its optimal bitstream, so the pool pins bitstreams to boards
    // instead of time-multiplexing one.
    let pool = simulate(
        tenants(),
        config(DispatchPolicy::reconfig_aware())
            .to_builder()
            .boards(4)
            .placement(PlacementPolicy::BitstreamAffine)
            .build()
            .expect("demo config is valid"),
    );
    println!("\n--- reconfig-aware dispatch, 4-board pool, BitstreamAffine ---");
    print!("{pool}");

    println!("\n--- comparison (sharding) ---");
    for (name, r) in [
        ("1 board           ", &aware),
        ("1 board, 4x faster", &fast),
        ("4-board pool      ", &pool),
    ] {
        println!(
            "{name}: p99 {:>7.1} ms | reconfigs {:>6} | stall {:>7.1} s",
            p99(r) * 1e3,
            r.reconfigs,
            r.reconfig_secs,
        );
    }

    // The headline: sharding with bitstream affinity eliminates most
    // reconfigurations and beats the single-board baseline on p99 — even
    // when that baseline gets 4x the compute for free.
    assert!(
        pool.reconfigs < aware.reconfigs,
        "4 affine boards must reconfigure strictly less than one board: {} vs {}",
        pool.reconfigs,
        aware.reconfigs
    );
    assert!(
        p99(&pool) < p99(&aware),
        "4 affine boards must beat one board on p99: {} vs {}",
        p99(&pool),
        p99(&aware)
    );
    assert!(
        pool.reconfigs < fast.reconfigs && p99(&pool) < p99(&fast),
        "even a 4x-fast single board keeps thrashing the ICAP"
    );
    println!(
        "\n4-board BitstreamAffine pool eliminated {:.2}% of reconfigurations and cut p99 by {:.0}% vs one board",
        (1.0 - pool.reconfigs as f64 / aware.reconfigs as f64) * 100.0,
        (1.0 - p99(&pool) / p99(&aware)) * 100.0,
    );

    // ----- Staged pipelining: serial vs overlapped lifecycle -----------

    // Six Taobao-scale regions (3.2 GB each) outgrow a board's ~15 GB
    // DRAM graph budget, so tenant residency thrashes: LRU eviction makes
    // every few requests pay a ~128 ms cold re-upload. That recurring
    // ingest is what the pipelined scheduler hides behind fabric compute.
    let heavy = |overlap| {
        simulate(
            TenantSpec::taobao_regions(4.0, PERIOD_SECS),
            ServeConfig::reconfig_aware()
                .to_builder()
                .seed(SEED)
                .total_requests(REQUESTS)
                .queue_capacity(512)
                .boards(4)
                .overlap(overlap)
                .build()
                .expect("demo config is valid"),
        )
    };
    let serial = heavy(false);
    println!("\n--- memory-pressured pool (6x Taobao regions), serial lifecycle ---");
    print!("{serial}");
    let pipelined = heavy(true);
    println!("\n--- memory-pressured pool, pipelined lifecycle (overlap=true) ---");
    print!("{pipelined}");

    println!("\n--- comparison (staged pipelining) ---");
    for (name, r) in [("serial   ", &serial), ("pipelined", &pipelined)] {
        println!(
            "{name}: p50 {:>7.1} ms | p99 {:>8.1} ms | {:>5.1} req/s | dropped {:>5} | evictions {:>4} | overlap {:>4.0}%",
            p50(r) * 1e3,
            p99(r) * 1e3,
            r.throughput_rps(),
            r.dropped(),
            r.evictions(),
            r.pipeline_overlap_ratio() * 100.0,
        );
    }

    assert!(
        serial.evictions() > 1_000,
        "the heavy mix must thrash board DRAM, saw {} evictions",
        serial.evictions()
    );
    assert!(
        p99(&pipelined) < p99(&serial),
        "pipelining must cut the tail under memory pressure: {} vs {}",
        p99(&pipelined),
        p99(&serial)
    );
    assert!(
        pipelined.throughput_rps() >= serial.throughput_rps(),
        "hiding ingest behind compute cannot lose throughput"
    );
    println!(
        "\npipelined ingest cut p99 by {:.0}% and hid {:.0}% of DMA time behind fabric compute \
         ({} cold re-uploads from DRAM eviction)",
        (1.0 - p99(&pipelined) / p99(&serial)) * 100.0,
        pipelined.pipeline_overlap_ratio() * 100.0,
        pipelined.evictions(),
    );

    // ----- Cross-board migration over the PCIe switch ------------------

    // Act 1: rehydration. Same memory-pressured pipelined pool, but a
    // DRAM-evicted tenant now pulls its graph from a peer board still
    // holding a copy — board-to-board at switch bandwidth — instead of
    // re-uploading 3.2 GB from the host.
    let rehydrated = simulate(
        TenantSpec::taobao_regions(4.0, PERIOD_SECS),
        ServeConfig::pipelined()
            .to_builder()
            .seed(SEED)
            .total_requests(REQUESTS)
            .queue_capacity(512)
            .boards(4)
            .migrate(MigratePolicy::PeerRehydrate)
            .build()
            .expect("demo config is valid"),
    );
    println!("\n--- memory-pressured pool, pipelined + PeerRehydrate ---");
    print!("{rehydrated}");

    println!("\n--- comparison (rehydration over the switch) ---");
    for (name, r) in [
        ("host re-upload", &pipelined),
        ("peer rehydrate", &rehydrated),
    ] {
        println!(
            "{name}: p50 {:>6.1} ms | p99 {:>6.1} ms | host uploads {:>8.1} GB | switch {:>8.1} GB | {:>4} migrations",
            p50(r) * 1e3,
            p99(r) * 1e3,
            r.host_upload_bytes() as f64 / 1e9,
            r.switch_bytes() as f64 / 1e9,
            r.migrations(),
        );
    }
    assert!(
        rehydrated.migrations() > 1_000,
        "evicted tenants must rehydrate from peers, saw {}",
        rehydrated.migrations()
    );
    assert!(
        (rehydrated.host_upload_bytes() as f64) < pipelined.host_upload_bytes() as f64 * 0.6,
        "rehydration must cut host re-upload bytes by at least 40%: {} vs {}",
        rehydrated.host_upload_bytes(),
        pipelined.host_upload_bytes(),
    );
    assert!(
        p99(&rehydrated) <= p99(&pipelined) && p50(&rehydrated) <= p50(&pipelined),
        "switch-bandwidth ingest cannot be slower than the host link"
    );

    // Act 2: splitting. Under TenantAffine placement each region's
    // diurnal peak piles onto its home board while other boards idle;
    // SplitHot spills the backlog onto an idle board (migrating the
    // graph over the switch) once the queue outgrows its threshold.
    let affine = |migrate| {
        simulate(
            TenantSpec::taobao_regions(4.0, PERIOD_SECS),
            ServeConfig::pipelined()
                .to_builder()
                .seed(SEED)
                .total_requests(REQUESTS)
                .queue_capacity(512)
                .boards(4)
                .placement(PlacementPolicy::TenantAffine)
                .migrate(migrate)
                .build()
                .expect("demo config is valid"),
        )
    };
    let waiting = affine(MigratePolicy::Off);
    let split = affine(MigratePolicy::split_hot());
    println!("\n--- comparison (hot-tenant splitting, TenantAffine placement) ---");
    for (name, r) in [
        ("wait for home board", &waiting),
        ("split when hot     ", &split),
    ] {
        println!(
            "{name}: p50 {:>8.1} ms | p99 {:>8.1} ms | {:>4.1} req/s | dropped {:>5} | {:>3} migrations",
            p50(r) * 1e3,
            p99(r) * 1e3,
            r.throughput_rps(),
            r.dropped(),
            r.migrations(),
        );
    }
    assert!(
        p99(&split) < p99(&waiting) / 2.0,
        "splitting a hot tenant must slash the waiting tail: {} vs {}",
        p99(&split),
        p99(&waiting)
    );
    assert!(split.dropped() < waiting.dropped());
    assert!(split.migrations() > 0, "splits must migrate graphs");
    println!(
        "\ncross-board migration cut host uploads by {:.0}% under memory pressure \
         (rehydrating {} evictions at switch bandwidth), and splitting hot tenants \
         cut the affine-placement p99 by {:.0}% at {} fewer drops",
        (1.0 - rehydrated.host_upload_bytes() as f64 / pipelined.host_upload_bytes() as f64)
            * 100.0,
        rehydrated.migrations(),
        (1.0 - p99(&split) / p99(&waiting)) * 100.0,
        waiting.dropped() - split.dropped(),
    );

    // ----- Result cache: replay-heavy dashboards, off vs exact vs delta

    cache_act(SEED, REQUESTS, None);

    // ----- Scheduler fairness: FIFO vs WFQ vs SLO-aware ----------------

    scheduler_act(SEED, REQUESTS, PERIOD_SECS, None, None);
}

//! Multi-tenant serving under production-style load: four applications —
//! a movie recommender, a feed ranker, a fraud screen and a citation
//! explorer — share one simulated VPK180 through the AutoGNN runtime.
//! Offset diurnal peaks make the dominant tenant (and therefore the
//! cost-model-optimal bitstream) drift through the day, which is exactly
//! the regime where §V-B's reconfiguration decision helps or hurts: the
//! FIFO scheduler pays an ICAP stall almost every time the mix shifts,
//! while the reconfig-aware scheduler serves same-bitstream requests
//! together and amortizes it.
//!
//! ```text
//! cargo run --release --example multi_tenant_serve
//! ```

use agnn_graph::datasets::Dataset;
use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};

/// One simulated "day" of the demo, compressed to keep the replay short.
const PERIOD_SECS: f64 = 900.0;

fn tenants() -> Vec<TenantSpec> {
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: PERIOD_SECS,
        phase_secs: PERIOD_SECS * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(14.0, 0.00);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(14.0, 0.50); // peaks opposite the recommender
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(8.0, 0.25);
    let mut papers = TenantSpec::new("papers", Dataset::Arxiv, 0.0);
    papers.arrival = diurnal(6.0, 0.75);
    vec![movies, feed, fraud, papers]
}

fn main() {
    const SEED: u64 = 2_026;
    const REQUESTS: u64 = 120_000;
    let config = |policy| ServeConfig {
        seed: SEED,
        total_requests: REQUESTS,
        queue_capacity: 512,
        policy,
        ..ServeConfig::default()
    };

    println!(
        "replaying {REQUESTS} requests across {} tenants (seed {SEED})\n",
        tenants().len()
    );

    let fifo = simulate(tenants(), config(DispatchPolicy::Fifo));
    println!("--- FIFO dispatch ---");
    print!("{fifo}");

    let aware = simulate(tenants(), config(DispatchPolicy::reconfig_aware()));
    println!("\n--- reconfig-aware dispatch ---");
    print!("{aware}");

    let p99 = |r: &agnn_serve::TrafficReport| r.overall_latency().quantile(0.99);
    let p50 = |r: &agnn_serve::TrafficReport| r.overall_latency().quantile(0.50);
    println!("\n--- comparison ---");
    println!(
        "p50 {:.1} ms -> {:.1} ms | p99 {:.1} ms -> {:.1} ms | reconfigs {} -> {}",
        p50(&fifo) * 1e3,
        p50(&aware) * 1e3,
        p99(&fifo) * 1e3,
        p99(&aware) * 1e3,
        fifo.reconfigs,
        aware.reconfigs,
    );

    // Reproducibility: the replay is bit-stable under the fixed seed.
    let again = simulate(tenants(), config(DispatchPolicy::Fifo));
    assert_eq!(
        again.trace_digest, fifo.trace_digest,
        "deterministic replay"
    );

    // The drift-heavy trace is where bitstream-aware scheduling pays.
    assert!(
        aware.reconfigs < fifo.reconfigs,
        "reconfig-aware must amortize reconfigurations"
    );
    assert!(
        p99(&aware) < p99(&fifo),
        "reconfig-aware must beat FIFO on p99 under drift: {} vs {}",
        p99(&aware),
        p99(&fifo)
    );
    println!(
        "\nreconfig-aware dispatch cut p99 by {:.0}% and reconfigurations by {:.0}%",
        (1.0 - p99(&aware) / p99(&fifo)) * 100.0,
        (1.0 - aware.reconfigs as f64 / fifo.reconfigs as f64) * 100.0,
    );
}

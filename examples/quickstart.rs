//! Quickstart: preprocess a graph on the simulated AutoGNN accelerator and
//! run GNN inference on the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use autognn::prelude::*;

fn main() {
    // 1. A synthetic interaction-network graph (Table II-style skew).
    let coo = agnn_graph::generate::power_law(5_000, 60_000, 1.0, 7);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        coo.num_vertices(),
        coo.num_edges(),
        coo.average_degree()
    );

    // 2. An AutoGNN service with the Table III sampling parameters
    //    (k = 10 neighbors over 2 layers).
    let params = SampleParams::new(10, 2);
    let mut service = AutoGnn::new(params);
    let batch: Vec<Vid> = (0..64).map(Vid).collect();
    let record = service.serve(&coo, &batch, 42);

    let sub = &record.output.subgraph;
    println!(
        "subgraph: {} nodes, {} edges ({}x smaller than the input COO)",
        sub.csc.num_vertices(),
        sub.csc.num_edges(),
        coo.byte_size() / sub.byte_size().max(1)
    );
    println!(
        "accelerator config: {} UPEs x {} wide, {} SCR slots x {} wide",
        record.config.upe.count,
        record.config.upe.width,
        record.config.scr.slots,
        record.config.scr.width
    );
    println!("preprocessing breakdown (simulated VPK180):");
    for (stage, secs) in record.stage_secs.as_pairs() {
        println!("  {stage:<11} {:8.3} ms", secs * 1e3);
    }
    println!(
        "  transfers   {:8.3} ms (upload {:.3} + subgraph {:.3})",
        (record.upload_secs + record.download_secs) * 1e3,
        record.upload_secs * 1e3,
        record.download_secs * 1e3
    );

    // 3. GNN inference over the sampled subgraph (2-layer GraphSAGE).
    let features = FeatureTable::random(coo.num_vertices(), 32, 9);
    let spec = GnnSpec::new(GnnModel::GraphSage, 2, 32, 32);
    let result = forward(&spec, sub, &features, 11);
    println!(
        "inference: {} batch embeddings of dim {}, {:.1} MFLOPs",
        result.embeddings.rows(),
        result.embeddings.cols(),
        result.flops as f64 / 1e6
    );

    // 4. The hardware output is bit-identical to the software pipeline.
    let golden = preprocess(&coo, &batch, &params, 42);
    assert_eq!(record.output, golden);
    println!("hardware output verified against the software golden model ✓");
}

//! Social-network drift (the Fig. 7 motivation): as a StackOverflow-like
//! graph grows 0.52 %/day, the dominant preprocessing task shifts from
//! Selecting to Reshaping — exactly why a fixed accelerator configuration
//! ages badly and AutoGNN reconfigures.
//!
//! ```text
//! cargo run --example social_drift
//! ```

use autognn::prelude::*;
use autognn::runtime::scenario::task_share_series;

fn main() {
    let gnn = GnnSpec::table_iii_default();
    let series = task_share_series(Dataset::StackOverflow, 2_000, 200, gnn);

    println!("GPU-system latency shares for SO over 2000 days of growth:");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>11} {:>10}",
        "day", "ordering", "reshaping", "selecting", "reindexing", "inference"
    );
    let mut crossover = None;
    for point in &series {
        println!(
            "{:>6} {:>8.1}% {:>9.1}% {:>9.1}% {:>10.1}% {:>9.1}%",
            point.day,
            point.shares[0],
            point.shares[1],
            point.shares[2],
            point.shares[3],
            point.shares[4]
        );
        if crossover.is_none() && point.shares[1] > point.shares[2] {
            crossover = Some(point.day);
        }
    }
    match crossover {
        Some(day) => println!(
            "\nReshaping overtakes Selecting by day {day} — the paper observes the \
             same shift (\"after 400 days (SO) … Reshaping becomes increasingly \
             significant\", §III-A)."
        ),
        None => println!("\nReshaping never overtakes Selecting in this horizon."),
    }

    // What the drift means for a deployed AutoGNN: the optimal configuration
    // changes, so the runtime reprograms the device.
    let setup = EvalSetup::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    let fpga = agnn_devices::fpga::FpgaModel::default();
    let spec = Dataset::StackOverflow.spec();
    let day0 = setup.workload(spec.nodes, spec.edges);
    let grown = setup.workload(spec.nodes * 4, spec.edges * 4);
    let cfg0 = fpga.search(&day0, &plan, agnn_cost::SearchSpace::Full);
    let cfg1 = fpga.search(&grown, &plan, agnn_cost::SearchSpace::Full);
    println!(
        "\noptimal config day 0:    {} UPEs x {}, {} SCR slots x {}",
        cfg0.upe.count, cfg0.upe.width, cfg0.scr.slots, cfg0.scr.width
    );
    println!(
        "optimal config after 4x: {} UPEs x {}, {} SCR slots x {}",
        cfg1.upe.count, cfg1.upe.width, cfg1.scr.slots, cfg1.scr.width
    );
}

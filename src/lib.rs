//! # AutoGNN
//!
//! A faithful, fully simulated reproduction of **"AutoGNN: End-to-End
//! Hardware-Driven Graph Preprocessing for Enhanced GNN Performance"**
//! (HPCA 2026). GNN inference pipelines spend most of their time *before*
//! the model runs — converting edge lists to CSC and sampling neighborhoods.
//! AutoGNN moves that entire preprocessing workflow into reconfigurable
//! hardware built from two blocks: **Unified Processing Elements** (UPEs,
//! prefix-sum + relocation networks executing set-partitioning) and
//! **Single-Cycle Reducers** (SCRs, comparator arrays + adder/filter trees
//! executing set-counting), steered by a cost-model-driven software runtime
//! that partially reprograms the FPGA as workloads drift.
//!
//! This crate re-exports the whole workspace:
//!
//! - [`graph`] — COO/CSC formats, synthetic Table II datasets, dynamic
//!   update streams ([`agnn_graph`]);
//! - [`algo`] — software golden models of every preprocessing task
//!   ([`agnn_algo`]);
//! - [`hw`] — the bit-level accelerator simulator ([`agnn_hw`]);
//! - [`cost`] — the Table I cost model, bitstream ladder and optimizer
//!   ([`agnn_cost`]);
//! - [`devices`] — calibrated CPU/GPU/FPGA/power/board models
//!   ([`agnn_devices`]);
//! - [`gnn`] — GIN/GraphSAGE/GCN/GAT forward passes and inference timing
//!   ([`agnn_gnn`]);
//! - [`runtime`] — the AGNN-lib service, the seven compared systems and the
//!   dynamic-graph scenario engine ([`agnn_core`]);
//! - [`serve`] — the production-load layer above the runtime: a
//!   discrete-event, multi-tenant traffic scheduler with seeded
//!   Poisson/diurnal arrival processes, a bounded admission queue with drop
//!   accounting, FIFO vs *reconfig-aware* dispatch policies that amortize
//!   partial-reconfiguration stalls across same-bitstream request batches,
//!   a **staged request lifecycle** (ingest → preprocess → compute) that
//!   can pipeline each board's DMA engine against its fabric
//!   (double-buffered graph deltas, capacity-bounded residency with LRU
//!   eviction), and deterministic latency/throughput/queue-depth metrics
//!   with per-stage breakdowns ([`agnn_serve`]).
//!
//! # Quickstart
//!
//! ```
//! use autognn::prelude::*;
//!
//! // A synthetic interaction graph and a batch of inference nodes.
//! let coo = agnn_graph::generate::power_law(1_000, 10_000, 1.0, 7);
//! let batch: Vec<Vid> = (0..16).map(Vid).collect();
//!
//! // Serve one preprocessing request on the simulated accelerator.
//! let mut service = AutoGnn::new(SampleParams::new(10, 2));
//! let record = service.serve(&coo, &batch, 42);
//!
//! // The sampled subgraph is bit-identical to the software pipeline...
//! let golden = agnn_algo::pipeline::preprocess(&coo, &batch, &SampleParams::new(10, 2), 42);
//! assert_eq!(record.output, golden);
//!
//! // ...and carries the timing a VPK180 deployment would exhibit.
//! assert!(record.stage_secs.total() > 0.0);
//! ```

pub use agnn_algo as algo;
pub use agnn_core as runtime;
pub use agnn_cost as cost;
pub use agnn_devices as devices;
pub use agnn_gnn as gnn;
pub use agnn_graph as graph;
pub use agnn_hw as hw;
pub use agnn_serve as serve;

/// The most commonly used items in one import.
pub mod prelude {
    pub use agnn_algo::pipeline::{preprocess, SampleParams, SampledSubgraph};
    pub use agnn_core::config::EvalSetup;
    pub use agnn_core::runtime::{
        AutoGnn, ServiceRecord, ServiceStage, StageRecord, StageResource,
    };
    pub use agnn_core::systems::{evaluate, SystemContext, SystemKind};
    pub use agnn_cost::{BitstreamLibrary, CostModel, Workload};
    pub use agnn_devices::StageSecs;
    pub use agnn_gnn::features::FeatureTable;
    pub use agnn_gnn::models::{forward, GnnModel, GnnSpec};
    pub use agnn_graph::datasets::Dataset;
    pub use agnn_graph::{Coo, Csc, Edge, Vid};
    pub use agnn_hw::engine::AutoGnnEngine;
    pub use agnn_hw::{HwConfig, ScrConfig, UpeConfig};
    pub use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
    pub use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
    pub use agnn_serve::TrafficReport;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let _ = SampleParams::new(10, 2);
        let _ = HwConfig::vpk180_default();
        let _ = Dataset::ALL;
        let _ = SystemKind::ALL;
    }
}

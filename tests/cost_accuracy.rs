//! The Fig. 24 claim, verified end to end: the analytic cost model tracks
//! the cycle-level simulator across hardware configurations.

use agnn_cost::CostModel;
use agnn_devices::fpga::FpgaModel;
use autognn::prelude::*;

fn workload_and_graph() -> (Workload, Coo, Vec<Vid>) {
    let coo = agnn_graph::generate::power_law(4_000, 80_000, 0.8, 31);
    let batch: Vec<Vid> = (0..100).map(Vid).collect();
    let w = Workload::new(4_000, 80_000, 100, 10, 2);
    (w, coo, batch)
}

#[test]
fn analytic_report_tracks_simulator_across_upe_widths() {
    let (w, coo, batch) = workload_and_graph();
    let params = SampleParams::new(10, 2);
    let fpga = FpgaModel::default();
    // Fig. 24b: sweep UPE width at constant aggregate throughput.
    for (count, width) in [(32usize, 8usize), (16, 16), (8, 32), (4, 64), (2, 128)] {
        let cfg = HwConfig {
            upe: UpeConfig::new(count, width),
            scr: ScrConfig::new(2, 512),
        };
        let mut engine = AutoGnnEngine::new(cfg);
        let sim = engine.preprocess(&coo, &batch, &params, 17).report;
        let est = fpga.analytic_report(&w, cfg);
        let ratio = est.total_cycles() as f64 / sim.total_cycles() as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "width {width}: analytic {} vs simulated {} (ratio {ratio:.2})",
            est.total_cycles(),
            sim.total_cycles()
        );
    }
}

#[test]
fn table_i_model_tracks_simulated_reshaping_across_scr_widths() {
    // Fig. 24a: SCR cycles vs width, fixed slot count.
    let (_, coo, _) = workload_and_graph();
    let model = CostModel;
    let sorted = agnn_algo::ordering::order_edges_radix(coo.edges());
    let dsts: Vec<Vid> = sorted.iter().map(|e| e.dst).collect();
    for width in [64usize, 256, 1024, 4096] {
        let cfg = ScrConfig::new(2, width);
        let run = agnn_hw::kernel::Reshaper::new(cfg).build_pointers(coo.num_vertices(), &dsts);
        let est = model.reshaping_cycles(coo.num_vertices() as u64, coo.num_edges() as u64, cfg);
        let ratio = est / run.cycles as f64;
        assert!(
            (0.4..2.0).contains(&ratio),
            "width {width}: model {est:.0} vs simulated {} (ratio {ratio:.2})",
            run.cycles
        );
    }
}

#[test]
fn table_i_model_captures_saturation() {
    // Fig. 24a's "saturation": beyond the width where the node-side term
    // binds, wider SCRs stop helping — in both model and simulator.
    let model = CostModel;
    let n = 100_000u64;
    let e = 1_600_000u64;
    let narrow = model.reshaping_cycles(n, e, ScrConfig::new(4, 16));
    let mid = model.reshaping_cycles(n, e, ScrConfig::new(4, 64));
    let wide = model.reshaping_cycles(n, e, ScrConfig::new(4, 4096));
    let wider = model.reshaping_cycles(n, e, ScrConfig::new(4, 8192));
    assert!(narrow > mid, "widening helps while edge-bound");
    assert_eq!(wide, wider, "saturates once node-bound");
}

#[test]
fn cost_model_ranks_configurations_consistently_with_simulation() {
    // The model's purpose is picking configurations: its *ranking* of two
    // clearly different SCR shapes must match the simulator's.
    let coo = agnn_graph::generate::uniform(50_000, 100_000, 5);
    let sorted = agnn_algo::ordering::order_edges_radix(coo.edges());
    let dsts: Vec<Vid> = sorted.iter().map(|e| e.dst).collect();
    let slot_heavy = ScrConfig::new(32, 64);
    let width_heavy = ScrConfig::new(1, 2048);
    let sim_slot = agnn_hw::kernel::Reshaper::new(slot_heavy)
        .build_pointers(coo.num_vertices(), &dsts)
        .cycles;
    let sim_width = agnn_hw::kernel::Reshaper::new(width_heavy)
        .build_pointers(coo.num_vertices(), &dsts)
        .cycles;
    let model = CostModel;
    let est_slot = model.reshaping_cycles(50_000, 100_000, slot_heavy);
    let est_width = model.reshaping_cycles(50_000, 100_000, width_heavy);
    assert_eq!(
        sim_slot < sim_width,
        est_slot < est_width,
        "model and simulator must agree on the better config"
    );
}

//! End-to-end service behaviour across crates: residency, reconfiguration,
//! drift handling and determinism of the full AGNN-lib analog.

use agnn_graph::dynamic::{GrowthModel, UpdateStream};
use autognn::prelude::*;

#[test]
fn service_survives_a_growth_stream_with_consistent_outputs() {
    let base = Dataset::StackOverflow
        .generate_scaled(Dataset::StackOverflow.scale_for_max_edges(30_000), 2);
    let growth = GrowthModel::new(base.num_edges() as u64, 0.02);
    let mut stream = UpdateStream::new(base, growth, 0.6, 5);
    let params = SampleParams::new(8, 2);
    let mut service = AutoGnn::new(params);
    let batch: Vec<Vid> = (0..16).map(Vid).collect();

    let mut cold_start_upload = 0.0f64;
    for day in 0..6u32 {
        stream.advance();
        let record = service.serve(stream.graph(), &batch, u64::from(day));
        // Output always matches the golden pipeline on the live graph.
        let golden =
            agnn_algo::pipeline::preprocess(stream.graph(), &batch, &params, u64::from(day));
        assert_eq!(record.output, golden, "day {day}");
        if day == 0 {
            cold_start_upload = record.upload_secs;
            assert!(cold_start_upload > 0.0);
        } else {
            // Incremental uploads only: each daily delta (2% growth) stays
            // below the full-graph cold start. (At this test scale the
            // fixed PCIe doorbell latency dominates both, so compare the
            // totals rather than a large ratio.)
            assert!(
                record.upload_secs < cold_start_upload,
                "day {day}: delta {} vs cold start {cold_start_upload}",
                record.upload_secs
            );
        }
    }
}

#[test]
fn switching_tenants_pays_full_upload_and_may_reconfigure() {
    let params = SampleParams::new(10, 2);
    let mut service = AutoGnn::new(params);
    let batch: Vec<Vid> = (0..8).map(Vid).collect();

    let citation = Dataset::Arxiv.generate_scaled(Dataset::Arxiv.scale_for_max_edges(20_000), 1);
    let first = service.serve(&citation, &batch, 1);
    assert!(first.upload_secs > 0.0);

    // New tenant with a very different graph shape.
    service.evict_graph();
    let interaction = Dataset::Movie.generate_scaled(Dataset::Movie.scale_for_max_edges(20_000), 1);
    let second = service.serve(&interaction, &batch, 2);
    assert!(second.upload_secs > 0.0, "fresh tenant uploads its graph");
    assert_eq!(
        second.output,
        agnn_algo::pipeline::preprocess(&interaction, &batch, &params, 2)
    );
}

#[test]
fn repeated_serves_are_stable_and_cheap() {
    let coo = agnn_graph::generate::power_law(2_000, 20_000, 0.9, 7);
    let params = SampleParams::new(10, 2);
    let mut service = AutoGnn::new(params);
    let batch: Vec<Vid> = (0..8).map(Vid).collect();
    let first = service.serve(&coo, &batch, 0);
    for seed in 1..5u64 {
        let record = service.serve(&coo, &batch, seed);
        assert_eq!(record.upload_secs, 0.0, "graph stays resident");
        assert!(record.reconfig.is_none(), "configuration has converged");
        assert_eq!(record.config, first.config);
    }
}

#[test]
fn full_stack_quickstart_contract() {
    // The README quickstart, as a test: service -> subgraph -> inference.
    let coo = agnn_graph::generate::power_law(1_000, 10_000, 1.0, 7);
    let batch: Vec<Vid> = (0..16).map(Vid).collect();
    let mut service = AutoGnn::new(SampleParams::new(10, 2));
    let record = service.serve(&coo, &batch, 42);

    let features = FeatureTable::random(coo.num_vertices(), 32, 1);
    let spec = GnnSpec::new(GnnModel::GraphSage, 2, 32, 32);
    let out = forward(&spec, &record.output.subgraph, &features, 2);
    assert_eq!(out.embeddings.rows(), 16);
    assert!(record.stage_secs.total() > 0.0);
    assert!(record.output.subgraph.byte_size() < coo.byte_size());
}

//! Cross-crate verification: the hardware simulator's functional output is
//! bit-identical to the software golden pipeline on every dataset class,
//! in both fidelities and both selection strategies.

use agnn_algo::pipeline;
use agnn_hw::kernel::Fidelity;
use autognn::prelude::*;

fn scaled(dataset: Dataset, max_edges: u64, seed: u64) -> Coo {
    dataset.generate_scaled(dataset.scale_for_max_edges(max_edges), seed)
}

#[test]
fn engine_matches_software_on_every_dataset_class() {
    let params = SampleParams::new(10, 2);
    for dataset in [
        Dataset::Physics,       // citation: small, low degree
        Dataset::Movie,         // interaction: tiny n, huge degree
        Dataset::StackOverflow, // social: large, medium degree
        Dataset::Taobao,        // e-commerce: hub-dominated
    ] {
        let coo = scaled(dataset, 60_000, 1);
        let batch: Vec<Vid> = (0..20)
            .map(|i| Vid(i * (coo.num_vertices() as u32 / 21)))
            .collect();
        let golden = pipeline::preprocess(&coo, &batch, &params, 7);
        let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
        let run = engine.preprocess(&coo, &batch, &params, 7);
        assert_eq!(run.output, golden, "{dataset}");
        // The sampled subgraph respects uniqueness: one row per distinct VID.
        let mut uniq = run.output.subgraph.new_to_old.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            run.output.subgraph.new_to_old.len(),
            "{dataset}"
        );
    }
}

#[test]
fn structural_fidelity_matches_fast_on_a_real_workload() {
    let coo = scaled(Dataset::Arxiv, 8_000, 3);
    let params = SampleParams::new(5, 2);
    let batch: Vec<Vid> = (0..10).map(Vid).collect();
    let cfg = HwConfig {
        upe: UpeConfig::new(8, 32),
        scr: ScrConfig::new(4, 64),
    };
    let fast = agnn_hw::engine::AutoGnnEngine::with_fidelity(cfg, Fidelity::Fast)
        .preprocess(&coo, &batch, &params, 5);
    let structural = agnn_hw::engine::AutoGnnEngine::with_fidelity(cfg, Fidelity::Structural)
        .preprocess(&coo, &batch, &params, 5);
    assert_eq!(fast.output, structural.output);
    assert_eq!(fast.report, structural.report);
}

#[test]
fn layer_wise_strategy_is_also_equivalent() {
    let coo = scaled(Dataset::Collab, 10_000, 9);
    let params = SampleParams::layer_wise(8, 2);
    let batch: Vec<Vid> = (0..6).map(Vid).collect();
    let golden = pipeline::preprocess(&coo, &batch, &params, 11);
    let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
    let run = engine.preprocess(&coo, &batch, &params, 11);
    assert_eq!(run.output, golden);
}

#[test]
fn equivalence_holds_across_reconfigurations() {
    // Functional output must not depend on the hardware configuration.
    let coo = scaled(Dataset::Yelp, 12_000, 4);
    let params = SampleParams::new(6, 2);
    let batch: Vec<Vid> = (0..8).map(Vid).collect();
    let golden = pipeline::preprocess(&coo, &batch, &params, 13);
    let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
    for (count, width, slots, scr_width) in [(4, 16, 1, 32), (16, 64, 8, 128), (2, 256, 2, 1024)] {
        engine.reconfigure(HwConfig {
            upe: UpeConfig::new(count, width),
            scr: ScrConfig::new(slots, scr_width),
        });
        let run = engine.preprocess(&coo, &batch, &params, 13);
        assert_eq!(
            run.output, golden,
            "config {count}x{width}/{slots}x{scr_width}"
        );
    }
}

#[test]
fn subgraph_feeds_gnn_inference_end_to_end() {
    let coo = scaled(Dataset::Fraud, 15_000, 8);
    let params = SampleParams::new(10, 2);
    let batch: Vec<Vid> = (0..12).map(Vid).collect();
    let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
    let run = engine.preprocess(&coo, &batch, &params, 21);
    let features = FeatureTable::random(coo.num_vertices(), 16, 2);
    for model in GnnModel::ALL {
        let spec = GnnSpec::new(model, 2, 16, 16);
        let fwd = forward(&spec, &run.output.subgraph, &features, 3);
        assert_eq!(fwd.embeddings.rows(), batch.len(), "{}", model.name());
        assert!(fwd.embeddings.frobenius_norm().is_finite());
    }
}

//! Cross-crate property tests: invariants that must hold for *any* graph,
//! batch, seed and hardware configuration.

use agnn_algo::pipeline::{self, SampleParams};
use agnn_graph::{generate, Coo, Vid};
use agnn_hw::engine::AutoGnnEngine;
use agnn_hw::{HwConfig, ScrConfig, UpeConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Coo> {
    (2usize..200, 1usize..1_000, 0u64..1_000)
        .prop_map(|(n, e, seed)| generate::power_law(n, e, 0.8, seed))
}

fn arb_config() -> impl Strategy<Value = HwConfig> {
    (0u32..4, 1usize..8, 0u32..4, 1usize..4).prop_map(|(wi, count, si, slots)| HwConfig {
        upe: UpeConfig::new(count, 8 << wi),
        scr: ScrConfig::new(slots, 16 << si),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hardware engine's output equals the software pipeline's for any
    /// workload and any configuration.
    #[test]
    fn prop_engine_equals_software(
        coo in arb_graph(),
        config in arb_config(),
        batch_len in 1usize..8,
        k in 1usize..6,
        layers in 0u32..3,
        seed in any::<u64>(),
    ) {
        let batch: Vec<Vid> = (0..batch_len.min(coo.num_vertices()))
            .map(Vid::from_index)
            .collect();
        let params = SampleParams::new(k, layers);
        let golden = pipeline::preprocess(&coo, &batch, &params, seed);
        let run = AutoGnnEngine::new(config).preprocess(&coo, &batch, &params, seed);
        prop_assert_eq!(run.output, golden);
    }

    /// Structural invariants of any preprocessing output: the subgraph is a
    /// valid CSC over a dense VID space, the gather list is a bijection,
    /// batch nodes are present, and every sampled edge exists upstream.
    #[test]
    fn prop_subgraph_invariants(
        coo in arb_graph(),
        k in 1usize..8,
        layers in 1u32..4,
        seed in any::<u64>(),
    ) {
        let batch = vec![Vid(0), Vid(1.min(coo.num_vertices() as u32 - 1))];
        let params = SampleParams::new(k, layers);
        let out = pipeline::preprocess(&coo, &batch, &params, seed);
        let sub = &out.subgraph;

        // Dense VID space, bijective gather list.
        prop_assert_eq!(sub.csc.num_vertices(), sub.new_to_old.len());
        let mut uniq = sub.new_to_old.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), sub.new_to_old.len());

        // Batch nodes map into the subgraph.
        for (i, &b) in batch.iter().enumerate() {
            let new = sub.batch_new[i];
            prop_assert!(new.index() < sub.csc.num_vertices());
            prop_assert_eq!(sub.new_to_old[new.index()], b);
        }

        // Every subgraph edge is an original-graph edge.
        let full = pipeline::convert(&coo);
        for d in 0..sub.csc.num_vertices() {
            for &s in sub.csc.neighbors(Vid::from_index(d)) {
                let old_d = sub.new_to_old[d];
                let old_s = sub.new_to_old[s.index()];
                prop_assert!(full.neighbors(old_d).contains(&old_s));
            }
        }

        // Stats bound the structure.
        prop_assert!(sub.csc.num_edges() <= out.stats.selections);
        prop_assert_eq!(out.stats.subgraph_nodes, sub.csc.num_vertices());
    }

    /// Cycle counts are monotone in graph size for a fixed configuration.
    #[test]
    fn prop_cycles_grow_with_edges(
        n in 50usize..150,
        e in 100usize..500,
        seed in 0u64..100,
    ) {
        let small = generate::power_law(n, e, 0.8, seed);
        let large = generate::power_law(n, e * 8, 0.8, seed);
        let params = SampleParams::new(4, 1);
        let cfg = HwConfig {
            upe: UpeConfig::new(4, 16),
            scr: ScrConfig::new(2, 32),
        };
        let batch = vec![Vid(0)];
        let a = AutoGnnEngine::new(cfg).preprocess(&small, &batch, &params, 1);
        let b = AutoGnnEngine::new(cfg).preprocess(&large, &batch, &params, 1);
        prop_assert!(b.report.cycles.ordering >= a.report.cycles.ordering);
        prop_assert!(b.report.dram_bytes.ordering > a.report.dram_bytes.ordering);
    }

    /// The CSC round-trip is lossless for any graph.
    #[test]
    fn prop_csc_round_trip(coo in arb_graph()) {
        let csc = agnn_graph::Csc::from_coo(&coo);
        prop_assert_eq!(csc.num_edges(), coo.num_edges());
        let back = csc.to_coo();
        prop_assert_eq!(agnn_graph::Csc::from_coo(&back), csc);
    }

    /// Cost-model estimates are positive and monotone in workload size.
    #[test]
    fn prop_cost_monotone(
        nodes in 1_000u64..1_000_000,
        edges in 10_000u64..10_000_000,
    ) {
        use agnn_cost::{CostModel, Workload};
        let cfg = HwConfig::vpk180_default();
        let small = Workload::new(nodes, edges, 100, 10, 2);
        let large = Workload::new(nodes * 2, edges * 4, 100, 10, 2);
        let model = CostModel;
        let a = model.estimate(&small, cfg);
        let b = model.estimate(&large, cfg);
        prop_assert!(a.total() > 0.0);
        prop_assert!(b.ordering >= a.ordering);
        prop_assert!(b.reshaping >= a.reshaping);
    }
}

//! Integration tests of the serving layer against the full runtime stack:
//! determinism, backpressure accounting, and the FIFO vs reconfig-aware
//! policy comparison on a drift-heavy multi-tenant trace.

use agnn_graph::datasets::Dataset;
use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};

/// Tenants with offset diurnal peaks: the dominant tenant — and with it
/// the cost-model-optimal bitstream — rotates through the cycle.
fn drift_heavy_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

#[test]
fn replay_is_deterministic_end_to_end() {
    let cfg = ServeConfig {
        seed: 99,
        total_requests: 20_000,
        policy: DispatchPolicy::reconfig_aware(),
        ..ServeConfig::default()
    };
    let a = simulate(drift_heavy_tenants(), cfg);
    let b = simulate(drift_heavy_tenants(), cfg);
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(
        a, b,
        "full reports identical: same percentiles, drops, reconfigs"
    );
    // And the percentile report itself is stable text.
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn backpressure_is_fully_accounted() {
    let cfg = ServeConfig {
        seed: 17,
        total_requests: 10_000,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let report = simulate(drift_heavy_tenants(), cfg);
    assert_eq!(report.completed() + report.dropped(), 10_000);
    assert!(report.dropped() > 0, "tiny queue under load must drop");
    assert!(report.queue_depth.max_depth() <= 8);
    let per_tenant: u64 = report.tenants.iter().map(|t| t.completed + t.dropped).sum();
    assert_eq!(per_tenant, 10_000, "per-tenant accounting sums to offered");
}

#[test]
fn reconfig_aware_beats_fifo_on_p99_under_drift() {
    let mk = |policy| {
        simulate(
            drift_heavy_tenants(),
            ServeConfig {
                seed: 7,
                total_requests: 30_000,
                queue_capacity: 512,
                policy,
                ..ServeConfig::default()
            },
        )
    };
    let fifo = mk(DispatchPolicy::Fifo);
    let aware = mk(DispatchPolicy::reconfig_aware());

    assert!(
        aware.reconfigs < fifo.reconfigs,
        "strictly fewer reconfigurations: {} vs {}",
        aware.reconfigs,
        fifo.reconfigs
    );
    let fifo_p99 = fifo.overall_latency().quantile(0.99);
    let aware_p99 = aware.overall_latency().quantile(0.99);
    assert!(
        aware_p99 < fifo_p99,
        "p99 must improve: {aware_p99} vs {fifo_p99}"
    );
    assert!(
        aware.throughput_rps() >= fifo.throughput_rps(),
        "amortizing stalls cannot lose throughput: {} vs {}",
        aware.throughput_rps(),
        fifo.throughput_rps()
    );
}

#[test]
fn serving_prices_match_the_runtime_models() {
    // One light-load tenant: per-request latency must be dominated by the
    // same analytic stage seconds the runtime would report, not by queueing.
    let tenants = vec![TenantSpec::new("solo", Dataset::Physics, 0.2)];
    let report = simulate(
        tenants,
        ServeConfig {
            seed: 1,
            total_requests: 50,
            ..ServeConfig::default()
        },
    );
    assert_eq!(report.completed(), 50);
    let stats = &report.tenants[0];
    // Board time accumulated but light load means no queueing backlog:
    // latency p50 stays close to the mean service time.
    assert!(stats.board_secs > 0.0);
    let mean_service = stats.board_secs / stats.completed as f64;
    let p50 = stats.latency.quantile(0.5);
    assert!(
        p50 < mean_service * 10.0,
        "p50 {p50} should be near service time {mean_service}"
    );
}

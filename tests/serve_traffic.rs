//! Integration tests of the serving layer against the full runtime stack:
//! determinism, backpressure accounting, the FIFO vs reconfig-aware policy
//! comparison on a drift-heavy multi-tenant trace, board-pool sharding
//! (including the pinned PR 1 golden digests a single-board pool must
//! reproduce bit-for-bit), and property tests over arbitrary pool sizes
//! and placement policies.

use agnn_graph::datasets::Dataset;
use agnn_serve::pool::{MigratePolicy, PlacementPolicy};
use agnn_serve::sched::SchedKind;
use agnn_serve::sim::{simulate, DispatchPolicy, HedgeKind, ServeConfig, TrafficSim};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::trace::{SpanKind, Track};
use agnn_serve::{CacheKind, FlightRecorder, StallBreakdown};
use proptest::prelude::*;

/// Tenants with offset diurnal peaks: the dominant tenant — and with it
/// the cost-model-optimal bitstream — rotates through the cycle.
fn drift_heavy_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

#[test]
fn replay_is_deterministic_end_to_end() {
    let cfg = ServeConfig::builder()
        .seed(99)
        .total_requests(20_000)
        .policy(DispatchPolicy::reconfig_aware())
        .build()
        .unwrap();
    let a = simulate(drift_heavy_tenants(), cfg);
    let b = simulate(drift_heavy_tenants(), cfg);
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(
        a, b,
        "full reports identical: same percentiles, drops, reconfigs"
    );
    // And the percentile report itself is stable text.
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn backpressure_is_fully_accounted() {
    let cfg = ServeConfig::builder()
        .seed(17)
        .total_requests(10_000)
        .queue_capacity(8)
        .build()
        .unwrap();
    let report = simulate(drift_heavy_tenants(), cfg);
    assert_eq!(report.completed() + report.dropped(), 10_000);
    assert!(report.dropped() > 0, "tiny queue under load must drop");
    assert!(report.queue_depth.max_depth() <= 8);
    let per_tenant: u64 = report.tenants.iter().map(|t| t.completed + t.dropped).sum();
    assert_eq!(per_tenant, 10_000, "per-tenant accounting sums to offered");
}

#[test]
fn reconfig_aware_beats_fifo_on_p99_under_drift() {
    let mk = |policy| {
        let cfg = ServeConfig::builder()
            .seed(7)
            .total_requests(30_000)
            .queue_capacity(512)
            .policy(policy)
            .build()
            .unwrap();
        simulate(drift_heavy_tenants(), cfg)
    };
    let fifo = mk(DispatchPolicy::Fifo);
    let aware = mk(DispatchPolicy::reconfig_aware());

    assert!(
        aware.reconfigs < fifo.reconfigs,
        "strictly fewer reconfigurations: {} vs {}",
        aware.reconfigs,
        fifo.reconfigs
    );
    let fifo_p99 = fifo.overall_latency().quantile(0.99);
    let aware_p99 = aware.overall_latency().quantile(0.99);
    assert!(
        aware_p99 < fifo_p99,
        "p99 must improve: {aware_p99} vs {fifo_p99}"
    );
    assert!(
        aware.throughput_rps() >= fifo.throughput_rps(),
        "amortizing stalls cannot lose throughput: {} vs {}",
        aware.throughput_rps(),
        fifo.throughput_rps()
    );
}

/// Golden values captured from the PR 1 single-board simulator (commit
/// `13c5e52`, before the board-pool refactor) on the drift-heavy trace:
/// seed 99, 5 000 requests, default queue. A single-board pool must
/// reproduce them **bit-for-bit** — same event-trace digest, same
/// completion/drop/reconfiguration counts — or pool numbers stop being
/// comparable across the perf trajectory.
#[test]
fn single_board_pool_reproduces_pr1_metrics_bit_for_bit() {
    struct Golden {
        policy: DispatchPolicy,
        placement: PlacementPolicy,
        digest: u64,
        completed: u64,
        dropped: u64,
        reconfigs: u64,
    }
    let goldens = [
        Golden {
            policy: DispatchPolicy::Fifo,
            placement: PlacementPolicy::LeastLoaded,
            digest: 0x0A50_3A29_FBBB_3279,
            completed: 1_280,
            dropped: 3_720,
            reconfigs: 756,
        },
        Golden {
            policy: DispatchPolicy::reconfig_aware(),
            placement: PlacementPolicy::LeastLoaded,
            digest: 0x7A80_395C_B156_02F6,
            completed: 5_000,
            dropped: 0,
            reconfigs: 549,
        },
        // With one board, BitstreamAffine degenerates to the PR 1
        // reconfig-aware queue scan exactly.
        Golden {
            policy: DispatchPolicy::reconfig_aware(),
            placement: PlacementPolicy::BitstreamAffine,
            digest: 0x7A80_395C_B156_02F6,
            completed: 5_000,
            dropped: 0,
            reconfigs: 549,
        },
    ];
    for g in goldens {
        let report = simulate(
            drift_heavy_tenants(),
            ServeConfig::builder()
                .seed(99)
                .total_requests(5_000)
                .policy(g.policy)
                .placement(g.placement)
                .build()
                .unwrap(),
        );
        let label = format!("{:?}/{}", g.policy, g.placement.name());
        assert_eq!(
            report.trace_digest, g.digest,
            "{label}: PR 1 trace digest must reproduce bit-for-bit"
        );
        assert_eq!(report.completed(), g.completed, "{label}");
        assert_eq!(report.dropped(), g.dropped, "{label}");
        assert_eq!(report.reconfigs, g.reconfigs, "{label}");
        assert_eq!(report.boards.len(), 1);
        assert_eq!(report.boards[0].completed, g.completed, "{label}");
    }
}

/// The NullSink digest-equivalence invariant at its sharpest: running the
/// PR 1 golden configuration with a [`FlightRecorder`] attached must
/// still reproduce the pinned digest bit-for-bit — tracing observes the
/// schedule, it never becomes part of it — while the recorder holds a
/// queryable per-request timeline of the very same run.
#[test]
fn flight_recorder_reproduces_the_golden_digest_while_recording() {
    let cfg = ServeConfig::builder()
        .seed(99)
        .total_requests(5_000)
        .policy(DispatchPolicy::Fifo)
        .placement(PlacementPolicy::LeastLoaded)
        .log_requests(true)
        .build()
        .unwrap();
    let mut recorder = FlightRecorder::default();
    let report = TrafficSim::new(drift_heavy_tenants(), cfg).run_traced(&mut recorder);
    assert_eq!(
        report.trace_digest, 0x0A50_3A29_FBBB_3279,
        "the golden digest must survive tracing bit-for-bit"
    );
    assert_eq!(report.completed(), 1_280);
    assert_eq!(report.dropped(), 3_720);
    assert_eq!(report.reconfigs, 756);

    // The recorder saw the whole run: every dispatched (== completed)
    // request got a queue span, and the serial lifecycle put its ingest,
    // preprocess and hand-off on the single board's resource tracks.
    assert_eq!(recorder.dropped_spans(), 0, "default ring holds a 5k run");
    let queue_spans = recorder
        .spans()
        .filter(|s| s.kind == SpanKind::Queue)
        .count() as u64;
    assert_eq!(
        queue_spans,
        report.completed(),
        "one queue span per dispatch"
    );
    let first = recorder.spans_for_request(0);
    assert!(
        first.len() >= 4,
        "request 0 must carry queue + ingest + preprocess + hand-off, got {first:?}"
    );
    // Stall attribution and the trace agree on what the run did: the
    // aggregate reconfig stall is exactly the report's counter.
    assert!(
        report.stall.reconfig_secs > 0.0,
        "756 reconfigs stall somewhere"
    );
    assert!(
        (report.stall.total()
            - report
                .requests
                .iter()
                .map(|r| r.latency.total())
                .sum::<f64>())
        .abs()
            < 1e-6,
        "attribution covers every completed request end to end"
    );
}

#[test]
fn bitstream_affine_pool_beats_single_board_on_the_drift_heavy_trace() {
    let base = ServeConfig::builder()
        .seed(7)
        .total_requests(20_000)
        .queue_capacity(512)
        .policy(DispatchPolicy::reconfig_aware())
        .build()
        .unwrap();
    let single = simulate(drift_heavy_tenants(), base);
    let pool = simulate(
        drift_heavy_tenants(),
        base.to_builder()
            .boards(4)
            .placement(PlacementPolicy::BitstreamAffine)
            .build()
            .unwrap(),
    );
    assert!(
        pool.reconfigs < single.reconfigs / 10,
        "4 affine boards must eliminate most reconfigurations: {} vs {}",
        pool.reconfigs,
        single.reconfigs
    );
    let single_p99 = single.overall_latency().quantile(0.99);
    let pool_p99 = pool.overall_latency().quantile(0.99);
    assert!(
        pool_p99 < single_p99,
        "pool p99 {pool_p99} must beat single-board {single_p99}"
    );
    assert_eq!(
        pool.completed() + pool.dropped(),
        single.completed() + single.dropped(),
        "same offered load either way"
    );
}

/// FIFO promises strict arrival order, so `BitstreamAffine` placement
/// must not let the affinity scan overtake the queue front: on one board
/// it must produce exactly the `LeastLoaded` FIFO schedule (placement
/// degenerates to "which board", and there is only one).
#[test]
fn bitstream_affine_under_fifo_preserves_arrival_order() {
    let base = ServeConfig::builder()
        .seed(99)
        .total_requests(5_000)
        .policy(DispatchPolicy::Fifo)
        .build()
        .unwrap();
    let fifo = simulate(drift_heavy_tenants(), base);
    let affine = simulate(
        drift_heavy_tenants(),
        base.to_builder()
            .placement(PlacementPolicy::BitstreamAffine)
            .build()
            .unwrap(),
    );
    assert_eq!(
        affine.trace_digest, fifo.trace_digest,
        "affinity routing must not reorder a FIFO queue"
    );
}

/// With more tenants than boards, a home board multiplexes several
/// bitstreams, so `TenantAffine` placement must still route request
/// selection through the dispatch policy: reconfig-aware batching has to
/// produce a different (cheaper) schedule than FIFO on the same trace.
#[test]
fn tenant_affine_respects_the_dispatch_policy_when_tenants_share_a_board() {
    let base = ServeConfig::builder()
        .seed(31)
        .total_requests(8_000)
        .queue_capacity(512)
        .boards(2) // 3 tenants: movies and fraud share home board 0
        .placement(PlacementPolicy::TenantAffine)
        .build()
        .unwrap();
    let fifo = simulate(
        drift_heavy_tenants(),
        base.to_builder()
            .policy(DispatchPolicy::Fifo)
            .build()
            .unwrap(),
    );
    let aware = simulate(
        drift_heavy_tenants(),
        base.to_builder()
            .policy(DispatchPolicy::reconfig_aware())
            .build()
            .unwrap(),
    );
    assert_ne!(
        aware.trace_digest, fifo.trace_digest,
        "reconfig-aware under TenantAffine must not degenerate to FIFO"
    );
    assert!(
        aware.reconfigs < fifo.reconfigs,
        "same-bitstream batching must cut reconfigurations on a shared home board: {} vs {}",
        aware.reconfigs,
        fifo.reconfigs
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pipelining is a scheduling change, not a semantic one: for any
    /// seed, pool size, placement and dispatch policy, the pipelined
    /// scheduler serves exactly the same request set as the serial one
    /// (served + dropped == arrivals; on a drop-free queue the identical
    /// (tenant, arrival) multiset). On an *order-preserving* schedule
    /// (FIFO dispatch, one board) pipelining additionally dominates
    /// request by request: no individual latency gets worse. Adaptive
    /// placement/dispatch legitimately re-route requests once stage
    /// timings shift (a board frees earlier, so a different board/request
    /// pairing wins), trading individual requests for aggregate gains —
    /// so the per-request bound is asserted exactly where it is a
    /// theorem.
    #[test]
    fn pipelined_mode_serves_the_same_requests_no_slower(
        seed in proptest::any::<u64>(),
        boards in 1usize..5,
        placement_pick in 0u32..3,
        fifo in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let policy = if fifo {
            DispatchPolicy::Fifo
        } else {
            DispatchPolicy::reconfig_aware()
        };
        let total = 500;
        let mk = |overlap| {
            let cfg = ServeConfig::builder()
                .seed(seed)
                .total_requests(total)
                // Deep enough that neither mode drops: the served sets
                // are then comparable request by request.
                .queue_capacity(2_048)
                .boards(boards)
                .placement(placement)
                .policy(policy)
                .overlap(overlap)
                .log_requests(true)
                .build()
                .unwrap();
            simulate(drift_heavy_tenants(), cfg)
        };
        let serial = mk(false);
        let pipelined = mk(true);
        prop_assert_eq!(serial.completed() + serial.dropped(), total);
        prop_assert_eq!(pipelined.completed() + pipelined.dropped(), total);
        prop_assert_eq!(serial.dropped(), 0, "queue sized to avoid drops");
        prop_assert_eq!(pipelined.dropped(), 0);

        // Identical served multiset: key each request by its arrival
        // (arrival streams are scheduling-independent, so the bits match).
        let key = |r: &agnn_serve::CompletedRequest| (r.tenant, r.arrival_secs.to_bits());
        let mut serial_log: Vec<_> = serial.requests.iter().map(
            |r| (key(r), r.latency.total())
        ).collect();
        let mut pipelined_log: Vec<_> = pipelined.requests.iter().map(
            |r| (key(r), r.latency.total())
        ).collect();
        serial_log.sort_by_key(|entry| entry.0);
        pipelined_log.sort_by_key(|entry| entry.0);
        prop_assert_eq!(serial_log.len(), pipelined_log.len());
        let order_preserving = boards == 1 && fifo;
        for (s, p) in serial_log.iter().zip(&pipelined_log) {
            prop_assert_eq!(s.0, p.0, "same request set in both modes");
            if order_preserving {
                prop_assert!(
                    p.1 <= s.1 + 1e-9,
                    "request (tenant {}, arrival {}) slower pipelined: {} vs {} \
                     (seed {seed} placement {})",
                    s.0.0,
                    f64::from_bits(s.0.1),
                    p.1,
                    s.1,
                    placement.name(),
                );
            }
        }
    }

    /// Migration is a transport change, not a semantic one: for any seed,
    /// pool size, placement and migration flavor, enabling migration on
    /// the memory-pressured trace serves the identical request multiset
    /// as `MigratePolicy::Off` (keyed by scheduling-independent arrivals,
    /// on a drop-free queue). Byte accounting conserves: every served
    /// request's graph arrived from exactly one source per byte — the
    /// per-request host/switch splits sum to the pool totals, every
    /// migration moved switch bytes, and `Off` never touches the switch.
    #[test]
    fn migration_serves_the_same_multiset_and_conserves_bytes(
        seed in proptest::any::<u64>(),
        boards in 2usize..5,
        placement_pick in 0u32..3,
        split in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let migrate = if split {
            MigratePolicy::split_hot()
        } else {
            MigratePolicy::PeerRehydrate
        };
        let total = 400;
        let mk = |migrate| {
            let cfg = ServeConfig::pipelined()
                .to_builder()
                .seed(seed)
                .total_requests(total)
                // Deep enough that neither mode drops: the served
                // multisets are then directly comparable.
                .queue_capacity(4_096)
                .boards(boards)
                .placement(placement)
                .migrate(migrate)
                .log_requests(true)
                .build()
                .unwrap();
            simulate(TenantSpec::taobao_regions(4.0, 900.0), cfg)
        };
        let off = mk(MigratePolicy::Off);
        let on = mk(migrate);
        prop_assert_eq!(off.dropped(), 0, "queue sized to avoid drops");
        prop_assert_eq!(on.dropped(), 0);
        prop_assert_eq!(off.completed(), total);
        prop_assert_eq!(on.completed(), total);

        // Identical served multiset: arrivals are scheduling-independent.
        let key = |r: &agnn_serve::CompletedRequest| (r.tenant, r.arrival_secs.to_bits());
        let mut off_keys: Vec<_> = off.requests.iter().map(key).collect();
        let mut on_keys: Vec<_> = on.requests.iter().map(key).collect();
        off_keys.sort_unstable();
        on_keys.sort_unstable();
        prop_assert_eq!(off_keys, on_keys, "same requests served either way");

        // Off never touches the switch; per-request splits sum to the
        // pool totals on both sides.
        prop_assert_eq!(off.switch_bytes(), 0);
        prop_assert_eq!(off.migrations(), 0);
        prop_assert!(off.requests.iter().all(|r| r.switch_bytes == 0));
        for report in [&off, &on] {
            let host: u64 = report.requests.iter().map(|r| r.host_bytes).sum();
            let switch: u64 = report.requests.iter().map(|r| r.switch_bytes).sum();
            prop_assert_eq!(host, report.host_upload_bytes(), "host bytes conserve");
            prop_assert_eq!(switch, report.switch_bytes(), "switch bytes conserve");
        }
        let migrated = on.requests.iter().filter(|r| r.switch_bytes > 0).count() as u64;
        prop_assert_eq!(
            migrated,
            on.migrations(),
            "every migration moved bytes over the switch, and nothing else did"
        );
    }

    /// Conservation: for any seed, pool size, placement policy, dispatch
    /// policy, queue bound, deadline and hedging mode, every offered
    /// request reaches exactly one arrival-terminal outcome — served,
    /// served late, expired in queue, aborted or dropped at admission —
    /// nothing is silently lost, hedge losers pair one-to-one with
    /// launched hedges, and the per-tenant and per-board breakdowns both
    /// sum to the totals.
    #[test]
    fn every_arrival_reaches_one_terminal_outcome_for_any_pool(
        seed in proptest::any::<u64>(),
        boards in 1usize..6,
        placement_pick in 0u32..3,
        scheduler_pick in 0u32..3,
        fifo in proptest::any::<bool>(),
        queue_capacity in 2usize..48,
        // deadline (none / tight / loose) × hedging (off / on) in one pick.
        lifecycle_pick in 0u32..6,
        overlap in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let scheduler = match scheduler_pick {
            0 => SchedKind::Fifo,
            // A quota *below* the aggregate capacity, so the per-tenant
            // drop path is exercised too.
            1 => SchedKind::WeightedFair { per_tenant_quota: 8 },
            _ => SchedKind::slo_aware(),
        };
        let policy = if fifo {
            DispatchPolicy::Fifo
        } else {
            DispatchPolicy::reconfig_aware()
        };
        // A tight deadline exercises expiry/abort; a loose one the
        // served-late split; None the legacy path.
        let deadline = match lifecycle_pick % 3 {
            0 => None,
            1 => Some(0.5),
            _ => Some(5.0),
        };
        // Hedging is serial-only and needs a second board to re-offer to.
        let hedge_on = lifecycle_pick >= 3 && boards >= 2 && !overlap;
        let total = 600;
        let report = simulate(
            drift_heavy_tenants(),
            ServeConfig::builder()
                .seed(seed)
                .total_requests(total)
                .queue_capacity(queue_capacity)
                .boards(boards)
                .placement(placement)
                .policy(policy)
                .scheduler(scheduler)
                .overlap(overlap)
                .maybe_deadline(deadline)
                .hedge(if hedge_on { HedgeKind::latency() } else { HedgeKind::Off })
                .build()
                .unwrap(),
        );
        let outcomes = report.outcomes();
        prop_assert_eq!(
            outcomes.arrival_terminal(),
            total,
            "conservation violated: boards={} placement={} scheduler={} \
             deadline={:?} hedge={} overlap={} seed={}",
            boards,
            placement.name(),
            scheduler.name(),
            deadline,
            hedge_on,
            overlap,
            seed
        );
        prop_assert_eq!(outcomes.served + outcomes.served_late, report.completed());
        prop_assert_eq!(outcomes.dropped_at_admission, report.dropped());
        prop_assert_eq!(outcomes.served, report.goodput());
        prop_assert_eq!(outcomes.hedge_loser, report.hedges(), "every hedge cancels one leg");
        if !hedge_on {
            prop_assert_eq!(outcomes.hedge_loser, 0);
        }
        if deadline.is_none() {
            prop_assert_eq!(outcomes.served_late, 0);
            prop_assert_eq!(outcomes.expired_in_queue, 0);
            prop_assert_eq!(outcomes.aborted, 0);
            prop_assert_eq!(report.wasted_work_bytes, 0);
            prop_assert_eq!(report.wasted_secs, 0.0);
        }
        if !overlap {
            // Stage aborts only exist in the pipelined lifecycle — the
            // serial one holds the board through the whole request.
            prop_assert_eq!(outcomes.aborted, 0);
        }
        // The satellite assert: the aggregate drop count is exactly the
        // sum of the per-tenant counts — WFQ's per-tenant quota refusals
        // are attributed to the right tenant, never pooled.
        let tenant_drops: u64 = report.tenants.iter().map(|t| t.dropped).sum();
        prop_assert_eq!(report.dropped(), tenant_drops);
        let per_tenant: u64 = report.tenants.iter().map(|t| t.arrivals()).sum();
        prop_assert_eq!(per_tenant, total);
        for t in &report.tenants {
            prop_assert_eq!(t.outcomes.served + t.outcomes.served_late, t.completed);
            prop_assert_eq!(t.outcomes.dropped_at_admission, t.dropped);
            prop_assert_eq!(
                t.goodput_latency.count(),
                t.outcomes.served,
                "goodput histogram holds exactly the on-time completions"
            );
        }
        let per_board: u64 = report.boards.iter().map(|b| b.completed).sum();
        prop_assert_eq!(per_board, report.completed());
        prop_assert_eq!(report.boards.len(), boards);
        prop_assert!(report.queue_depth.max_depth() <= queue_capacity);
    }

    /// The Fifo-equivalence invariant over the scheduler seam, from the
    /// other side: with a single tenant there is nothing to arbitrate, so
    /// weighted fair queueing (quota == the aggregate bound) must
    /// reproduce the `SchedKind::Fifo` schedule bit-for-bit for any seed,
    /// pool size and queue bound.
    #[test]
    fn wfq_with_one_tenant_degenerates_to_fifo(
        seed in proptest::any::<u64>(),
        boards in 1usize..4,
        queue_capacity in 2usize..32,
    ) {
        let tenants = || vec![TenantSpec::new("solo", Dataset::Taobao, 30.0)];
        let mk = |scheduler| {
            let cfg = ServeConfig::builder()
                .seed(seed)
                .total_requests(400)
                .queue_capacity(queue_capacity)
                .boards(boards)
                .policy(DispatchPolicy::Fifo)
                .scheduler(scheduler)
                .build()
                .unwrap();
            simulate(tenants(), cfg)
        };
        let fifo = mk(SchedKind::Fifo);
        let wfq = mk(SchedKind::WeightedFair { per_tenant_quota: queue_capacity });
        prop_assert_eq!(fifo.trace_digest, wfq.trace_digest);
        prop_assert_eq!(fifo, wfq);
    }

    /// Stall attribution is an exact partition, not an estimate: for any
    /// seed, pool size, placement, scheduler, migration flavor, result
    /// cache and lifecycle mode, every completed request's six stall
    /// components (queue-wait / reconfig / DMA / fabric / hand-off /
    /// cache) sum to its end-to-end latency, and the report's aggregate
    /// breakdown is the sum of the per-request ones.
    #[test]
    fn stall_attribution_partitions_every_latency_exactly(
        seed in proptest::any::<u64>(),
        boards in 1usize..5,
        placement_pick in 0u32..3,
        scheduler_pick in 0u32..3,
        migrate_pick in 0u32..3,
        cache_pick in 0u32..3,
        overlap in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let scheduler = match scheduler_pick {
            0 => SchedKind::Fifo,
            1 => SchedKind::WeightedFair { per_tenant_quota: 8 },
            _ => SchedKind::slo_aware(),
        };
        let migrate = match migrate_pick {
            0 => MigratePolicy::Off,
            1 => MigratePolicy::PeerRehydrate,
            _ => MigratePolicy::split_hot(),
        };
        let cache = match cache_pick {
            0 => CacheKind::Off,
            1 => CacheKind::Exact,
            _ => CacheKind::delta(),
        };
        // Migration only fires under memory pressure and the staged
        // lifecycle; the drift trace covers the reconfig-stall side.
        let (tenants, overlap) = if migrate_pick == 0 {
            (drift_heavy_tenants(), overlap)
        } else {
            (TenantSpec::taobao_regions(4.0, 900.0), true)
        };
        let report = simulate(
            tenants,
            ServeConfig::reconfig_aware()
                .to_builder()
                .seed(seed)
                .total_requests(400)
                .queue_capacity(64)
                .boards(boards)
                .placement(placement)
                .scheduler(scheduler)
                .migrate(migrate)
                .cache(cache)
                .overlap(overlap)
                .log_requests(true)
                .build()
                .unwrap(),
        );
        let mut sum = StallBreakdown::default();
        for r in &report.requests {
            let b = StallBreakdown::of(&r.latency);
            prop_assert!(
                (b.total() - r.latency.total()).abs() <= 1e-9,
                "six components must sum to the end-to-end latency: \
                 {} vs {} (tenant {}, arrival {}, seed {seed})",
                b.total(),
                r.latency.total(),
                r.tenant,
                r.arrival_secs
            );
            sum.accumulate(&b);
        }
        for (label, got, want) in [
            ("queue", report.stall.queue_secs, sum.queue_secs),
            ("reconfig", report.stall.reconfig_secs, sum.reconfig_secs),
            ("dma", report.stall.dma_secs, sum.dma_secs),
            ("fabric", report.stall.fabric_secs, sum.fabric_secs),
            ("handoff", report.stall.handoff_secs, sum.handoff_secs),
            ("cache", report.stall.cache_secs, sum.cache_secs),
        ] {
            prop_assert!(
                (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                "aggregate {label} must equal the per-request sum: {got} vs {want}"
            );
        }
    }

    /// Tracing is observation, not participation: for any seed, pool
    /// size, migration flavor and lifecycle mode, running with a
    /// [`FlightRecorder`] attached yields the identical report — trace
    /// digest included — as the untraced run; and on every
    /// board-resource track (DMA, fabric, ICAP) the recorded spans never
    /// overlap, because each track is one physical resource serving one
    /// request at a time. (The queue track aggregates all waiting
    /// requests, so its spans overlap by design and are excluded.)
    #[test]
    fn tracing_observes_without_perturbing_and_tracks_never_overlap(
        seed in proptest::any::<u64>(),
        boards in 1usize..5,
        migrate_pick in 0u32..3,
        overlap in proptest::any::<bool>(),
    ) {
        let migrate = match migrate_pick {
            0 => MigratePolicy::Off,
            1 => MigratePolicy::PeerRehydrate,
            _ => MigratePolicy::split_hot(),
        };
        let tenants = || if migrate_pick == 0 {
            drift_heavy_tenants()
        } else {
            TenantSpec::taobao_regions(4.0, 900.0)
        };
        let overlap = overlap || migrate_pick != 0;
        let cfg = ServeConfig::reconfig_aware()
            .to_builder()
            .seed(seed)
            .total_requests(400)
            .queue_capacity(256)
            .boards(boards)
            .migrate(migrate)
            .overlap(overlap)
            .build()
            .unwrap();
        let untraced = simulate(tenants(), cfg);
        let mut recorder = FlightRecorder::default();
        let traced = TrafficSim::new(tenants(), cfg).run_traced(&mut recorder);
        prop_assert_eq!(
            untraced.trace_digest,
            traced.trace_digest,
            "digest-equivalence: the sink must not perturb the schedule"
        );
        prop_assert_eq!(&untraced, &traced, "sinks are write-only");
        prop_assert_eq!(recorder.dropped_spans(), 0, "ring sized for the run");

        let mut by_track: std::collections::BTreeMap<Track, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for span in recorder.spans() {
            prop_assert!(
                span.end_secs >= span.begin_secs,
                "spans run forward: {span:?}"
            );
            if let Track::Board { .. } = span.track {
                by_track
                    .entry(span.track)
                    .or_default()
                    .push((span.begin_secs, span.end_secs));
            }
        }
        prop_assert!(!by_track.is_empty(), "a 400-request run must emit spans");
        for (track, mut spans) in by_track {
            spans.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            for pair in spans.windows(2) {
                prop_assert!(
                    pair[1].0 >= pair[0].1 - 1e-9,
                    "{track:?}: span starting at {} overlaps one ending at {} \
                     (seed {seed}, boards {boards})",
                    pair[1].0,
                    pair[0].1
                );
            }
        }
    }

    /// The result cache's off switch is total: for any seed, pool size,
    /// placement, scheduler and migration combo, a run with
    /// [`CacheKind::Off`] spelled out is **byte-identical** — same trace
    /// digest, same report struct, same rendered JSON — to the default
    /// configuration's run, and its cache counters never move. This is
    /// the same gating contract `SchedKind`/`MigratePolicy` honor: the
    /// golden-digest pins above stay comparable across the perf
    /// trajectory because `Off` adds no schedule perturbation at all.
    #[test]
    fn cache_off_serves_a_byte_identical_report_for_any_combo(
        seed in proptest::any::<u64>(),
        boards in 1usize..5,
        placement_pick in 0u32..3,
        scheduler_pick in 0u32..3,
        migrate_pick in 0u32..3,
        overlap in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let scheduler = match scheduler_pick {
            0 => SchedKind::Fifo,
            1 => SchedKind::WeightedFair { per_tenant_quota: 8 },
            _ => SchedKind::slo_aware(),
        };
        let migrate = match migrate_pick {
            0 => MigratePolicy::Off,
            1 => MigratePolicy::PeerRehydrate,
            _ => MigratePolicy::split_hot(),
        };
        let tenants = || if migrate_pick == 0 {
            drift_heavy_tenants()
        } else {
            TenantSpec::taobao_regions(4.0, 900.0)
        };
        let overlap = overlap || migrate_pick != 0;
        let cfg = ServeConfig::reconfig_aware()
            .to_builder()
            .seed(seed)
            .total_requests(400)
            .queue_capacity(64)
            .boards(boards)
            .placement(placement)
            .scheduler(scheduler)
            .migrate(migrate)
            .overlap(overlap)
            .build()
            .unwrap();
        let default_cache = simulate(tenants(), cfg);
        let explicit_off = simulate(
            tenants(),
            cfg.to_builder().cache(CacheKind::Off).build().unwrap(),
        );
        prop_assert_eq!(default_cache.trace_digest, explicit_off.trace_digest);
        prop_assert_eq!(&default_cache, &explicit_off);
        // Byte-identical rendered reports, modulo the two fields that
        // measure the host machine rather than the simulation
        // (`sim_wall_secs` is real elapsed wall clock and
        // `sim_events_per_sec` is derived from it).
        let scrub = |json: String| {
            let mut out = json;
            for field in ["\"sim_wall_secs\":", "\"sim_events_per_sec\":"] {
                let (head, tail) = out.split_once(field).expect("field present");
                let (_, rest) = tail.split_once(',').expect("not the last field");
                out = format!("{head}{field}<wall>,{rest}");
            }
            out
        };
        prop_assert_eq!(scrub(default_cache.to_json()), scrub(explicit_off.to_json()));
        prop_assert_eq!(explicit_off.cache.lookups(), 0, "Off never consults the cache");
        prop_assert_eq!(explicit_off.cache.coalesced, 0);
        prop_assert_eq!(explicit_off.cache.invalidations, 0);
        for t in &explicit_off.tenants {
            prop_assert_eq!(
                t.cache_hits + t.cache_partial_hits + t.cache_misses + t.cache_coalesced,
                0,
                "Off never classifies a request"
            );
        }
    }

    /// No stale serve: with delta-driven invalidation on, every cache hit
    /// was served from an entry whose accumulated source-graph delta was
    /// within the configured `max_delta_frac` of the graph's size at
    /// build time — for any seed, pool size, scheduler and budget. The
    /// report records the *worst* delta fraction any hit was served at,
    /// so the bound is checked at its tightest point. Request accounting
    /// also stays conservative: classified requests equal completions.
    #[test]
    fn delta_invalidation_never_serves_beyond_its_budget(
        seed in proptest::any::<u64>(),
        boards in 1usize..4,
        scheduler_pick in 0u32..3,
        frac_mil in 1u64..200,
    ) {
        let scheduler = match scheduler_pick {
            0 => SchedKind::Fifo,
            1 => SchedKind::WeightedFair { per_tenant_quota: 8 },
            _ => SchedKind::slo_aware(),
        };
        let max_delta_frac = frac_mil as f64 / 1000.0;
        let report = simulate(
            drift_heavy_tenants(),
            ServeConfig::reconfig_aware()
                .to_builder()
                .seed(seed)
                .total_requests(600)
                .queue_capacity(64)
                .boards(boards)
                .scheduler(scheduler)
                .cache(CacheKind::Delta { max_delta_frac })
                .build()
                .unwrap(),
        );
        prop_assert!(
            report.cache.max_served_delta_frac <= max_delta_frac + 1e-12,
            "a hit was served at delta fraction {} against a budget of {} (seed {seed})",
            report.cache.max_served_delta_frac,
            max_delta_frac
        );
        // Every completion was classified exactly once: full hits and
        // drained waiters at arrival, partial hits and misses at
        // dispatch; drops are never classified.
        let classified = report.cache.hits
            + report.cache.partial_hits
            + report.cache.misses
            + report.cache.coalesced;
        prop_assert_eq!(classified, report.completed(), "classification partitions completions");
        for t in &report.tenants {
            prop_assert_eq!(
                t.cache_hits + t.cache_partial_hits + t.cache_misses + t.cache_coalesced,
                t.completed,
                "per-tenant classification partitions completions"
            );
        }
    }

    /// The deadline machinery's off switch, from the other side: an
    /// *unreachable* deadline must change nothing. Setting
    /// `default_deadline_secs(1e6)` arms every deadline code path — the
    /// expiry scan runs on each event, every completion takes the
    /// served/served-late split, pipelined dispatch schedules an abort
    /// event per request — yet no deadline ever fires, so the run must
    /// match the deadline-free one: same trace digest, same report
    /// struct, same rendered JSON. (`sim_events` is scrubbed along with
    /// the host-clock fields: the armed pipelined run pops its deferred
    /// no-op abort events, which the event counter sees and the schedule
    /// does not.)
    #[test]
    fn an_unreachable_deadline_reproduces_the_deadline_free_run(
        seed in proptest::any::<u64>(),
        boards in 1usize..5,
        placement_pick in 0u32..3,
        scheduler_pick in 0u32..3,
        overlap in proptest::any::<bool>(),
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let scheduler = match scheduler_pick {
            0 => SchedKind::Fifo,
            1 => SchedKind::WeightedFair { per_tenant_quota: 8 },
            _ => SchedKind::slo_aware(),
        };
        let mk = |deadline: Option<f64>| {
            let cfg = ServeConfig::reconfig_aware()
                .to_builder()
                .seed(seed)
                .total_requests(400)
                .queue_capacity(64)
                .boards(boards)
                .placement(placement)
                .scheduler(scheduler)
                .overlap(overlap)
                .maybe_deadline(deadline)
                .build()
                .unwrap();
            simulate(drift_heavy_tenants(), cfg)
        };
        let free = mk(None);
        let armed = mk(Some(1e6));
        prop_assert_eq!(
            free.trace_digest,
            armed.trace_digest,
            "an unreachable deadline must not perturb the schedule \
             (seed {}, boards {}, overlap {})",
            seed,
            boards,
            overlap
        );
        prop_assert_eq!(&free, &armed);
        let scrub = |json: String| {
            let mut out = json;
            for field in [
                "\"sim_wall_secs\":",
                "\"sim_events\":",
                "\"sim_events_per_sec\":",
            ] {
                let (head, tail) = out.split_once(field).expect("field present");
                let (_, rest) = tail.split_once(',').expect("not the last field");
                out = format!("{head}{field}<host>,{rest}");
            }
            out
        };
        prop_assert_eq!(scrub(free.to_json()), scrub(armed.to_json()));
        // The armed run classified everything as on time.
        let outcomes = armed.outcomes();
        prop_assert_eq!(outcomes.served, armed.completed());
        prop_assert_eq!(outcomes.served_late, 0);
        prop_assert_eq!(outcomes.expired_in_queue, 0);
        prop_assert_eq!(outcomes.aborted, 0);
        prop_assert_eq!(armed.wasted_work_bytes, 0);
        prop_assert_eq!(armed.wasted_secs, 0.0);
    }

    /// Hedging is a dispatch-time race, not a semantic change: on a
    /// drop-free queue, for any seed, pool size, placement and trigger
    /// factor, the hedged run serves exactly the same request multiset as
    /// the unhedged run — no request is lost, none completes twice — and
    /// every launched hedge pairs with exactly one cancelled loser leg.
    #[test]
    fn hedging_preserves_the_served_multiset_and_never_double_serves(
        seed in proptest::any::<u64>(),
        boards in 2usize..5,
        placement_pick in 0u32..3,
        factor_tenths in 1u64..30,
    ) {
        let placement = match placement_pick {
            0 => PlacementPolicy::TenantAffine,
            1 => PlacementPolicy::LeastLoaded,
            _ => PlacementPolicy::BitstreamAffine,
        };
        let total = 400;
        let mk = |hedge| {
            let cfg = ServeConfig::builder()
                .seed(seed)
                .total_requests(total)
                // Deep enough that neither run drops: the served
                // multisets are then directly comparable.
                .queue_capacity(2_048)
                .boards(boards)
                .placement(placement)
                .policy(DispatchPolicy::reconfig_aware())
                .hedge(hedge)
                .log_requests(true)
                .build()
                .unwrap();
            simulate(drift_heavy_tenants(), cfg)
        };
        let unhedged = mk(HedgeKind::Off);
        let hedged = mk(HedgeKind::Latency {
            factor: factor_tenths as f64 / 10.0,
        });
        prop_assert_eq!(unhedged.dropped(), 0, "queue sized to avoid drops");
        prop_assert_eq!(hedged.dropped(), 0);
        prop_assert_eq!(unhedged.completed(), total);
        prop_assert_eq!(
            hedged.completed(),
            total,
            "hedging must neither lose a request nor complete one twice \
             (seed {}, boards {}, factor {})",
            seed,
            boards,
            factor_tenths as f64 / 10.0
        );
        prop_assert_eq!(hedged.requests.len() as u64, total, "one log entry per request");
        // Identical served multiset: arrivals are scheduling-independent.
        let key = |r: &agnn_serve::CompletedRequest| (r.tenant, r.arrival_secs.to_bits());
        let mut unhedged_keys: Vec<_> = unhedged.requests.iter().map(key).collect();
        let mut hedged_keys: Vec<_> = hedged.requests.iter().map(key).collect();
        unhedged_keys.sort_unstable();
        hedged_keys.sort_unstable();
        prop_assert_eq!(unhedged_keys, hedged_keys, "same requests served either way");
        // Every hedge cancelled exactly one leg; the winner completed.
        let outcomes = hedged.outcomes();
        prop_assert_eq!(outcomes.arrival_terminal(), total);
        prop_assert_eq!(outcomes.hedge_loser, hedged.hedges());
        prop_assert_eq!(unhedged.hedges(), 0);
        // No deadline anywhere: hedging alone never writes a late split.
        prop_assert_eq!(outcomes.served, total);
    }
}

/// The tentpole headline at test scale: on the bursty-aggressor trace
/// ([`TenantSpec::bursty_aggressor`] — two steady interactive victims plus
/// one tenant whose diurnal bursts offer several times the pool's
/// capacity) a shared FIFO queue lets the aggressor's backlog starve the
/// victims, while weighted fair queueing (per-tenant quotas + deficit
/// round robin) holds each victim's p99 within ~2× of its *isolated* run
/// — the latency it would see with the aggressor absent entirely.
#[test]
fn wfq_bounds_victim_p99_under_a_bursty_aggressor() {
    // `weighted_fair()` pins strict dispatch + overlap; swap only the
    // scheduler so the compared runs differ in nothing else.
    let config = |scheduler| {
        ServeConfig::weighted_fair()
            .to_builder()
            .seed(4_242)
            .total_requests(6_000)
            .queue_capacity(512)
            .boards(2)
            .scheduler(scheduler)
            .build()
            .unwrap()
    };
    let fifo = simulate(
        TenantSpec::bursty_aggressor(2.0, 40.0, 900.0),
        config(SchedKind::Fifo),
    );
    let wfq = simulate(
        TenantSpec::bursty_aggressor(2.0, 40.0, 900.0),
        config(SchedKind::weighted_fair()),
    );
    // The isolated comparator: victims alone on the same pool.
    let isolated = simulate(
        TenantSpec::bursty_aggressor(2.0, 40.0, 900.0)
            .into_iter()
            .take(2)
            .collect(),
        config(SchedKind::Fifo),
    );
    for v in 0..2 {
        let name = &wfq.tenants[v].name;
        let iso_p99 = isolated.tenants[v].latency.quantile(0.99);
        let wfq_p99 = wfq.tenants[v].latency.quantile(0.99);
        let fifo_p99 = fifo.tenants[v].latency.quantile(0.99);
        // ~2.2x observed; the gap to 1x is head-of-line blocking behind
        // the one aggressor request already in service (no preemption),
        // which no admission policy can remove. The CI `wfq_burst` gate
        // pins the exact value +/-20%; this bound guards the semantics.
        assert!(
            wfq_p99 < iso_p99 * 2.5,
            "{name}: WFQ must hold the victim near its isolated tail: \
             {wfq_p99} vs isolated {iso_p99}"
        );
        assert!(
            fifo_p99 > wfq_p99 * 10.0,
            "{name}: FIFO must blow the victim tail up by an order of \
             magnitude where WFQ does not: {fifo_p99} vs {wfq_p99}"
        );
        assert_eq!(
            wfq.tenants[v].dropped, 0,
            "{name}: the aggressor's burst cannot evict a victim's backlog"
        );
        assert!(
            fifo.tenants[v].dropped > 0,
            "{name}: the shared FIFO queue drops victim traffic"
        );
        assert!(
            wfq.tenants[v].slo_violations < fifo.tenants[v].slo_violations,
            "{name}: fair queueing must improve SLO attainment"
        );
    }
    // The aggressor pays: its quota caps its backlog, so it drops more —
    // but per-tenant accounting still conserves every request.
    assert!(wfq.tenants[2].dropped > fifo.tenants[2].dropped);
    assert_eq!(wfq.completed() + wfq.dropped(), 6_000);
    // Determinism of the WFQ event model.
    let again = simulate(
        TenantSpec::bursty_aggressor(2.0, 40.0, 900.0),
        config(SchedKind::weighted_fair()),
    );
    assert_eq!(again.trace_digest, wfq.trace_digest);
    assert_eq!(again, wfq);
}

/// The deadline tentpole headline at test scale — the CI `deadline_burst`
/// scenario replays exactly this comparison's enforcement side. On the
/// bursty-aggressor trace the two interactive victims carry a 2 s
/// deadline. A deadline-oblivious server works through the backlogged
/// victim requests long after their clients gave up — board seconds and
/// upload bytes spent serving corpses. Enforcement (in-queue expiry plus
/// hedged dispatch on the two-board pool) drops the dead backlog at scan
/// time instead, so the victims' *on-time* tail collapses to the deadline
/// budget and the pool writes off far less work than the oblivious run
/// silently burned.
#[test]
fn deadline_enforcement_beats_oblivious_serving_on_the_bursty_trace() {
    let deadline = 2.0;
    // Aggressor mean 8 rps on a two-board pool: bursts overload the pool
    // (victim waits blow past the deadline), troughs drain it (victims
    // serve on time) — both sides of the 2 s boundary stay populated.
    let tenants = |with_deadline: bool| {
        let mut tenants = TenantSpec::bursty_aggressor(2.0, 8.0, 900.0);
        if with_deadline {
            for victim in &mut tenants[..2] {
                victim.deadline_secs = Some(deadline);
            }
        }
        tenants
    };
    let config = |hedge| {
        ServeConfig::builder()
            .seed(4_242)
            .total_requests(6_000)
            .queue_capacity(512)
            .boards(2)
            .policy(DispatchPolicy::reconfig_aware())
            .hedge(hedge)
            .log_requests(true)
            .build()
            .unwrap()
    };
    let oblivious = simulate(tenants(false), config(HedgeKind::Off));
    let enforced = simulate(tenants(true), config(HedgeKind::latency()));

    // Both runs face the same 6 000 arrivals; enforcement re-partitions
    // them across the typed outcomes instead of losing any.
    assert_eq!(oblivious.completed() + oblivious.dropped(), 6_000);
    assert_eq!(enforced.outcomes().arrival_terminal(), 6_000);
    assert!(
        enforced.expired_in_queue() > 100,
        "the aggressor's bursts must push victim queue waits past 2 s, \
         expired only {}",
        enforced.expired_in_queue()
    );

    // Victim goodput-p99: the on-time tail under enforcement beats the
    // tail the oblivious run made those clients wait for.
    for v in 0..2 {
        let name = &enforced.tenants[v].name;
        let oblivious_p99 = oblivious.tenants[v].latency.quantile(0.99);
        let goodput_p99 = enforced.tenants[v].goodput_latency.quantile(0.99);
        assert!(
            goodput_p99 <= deadline,
            "{name}: on-time completions sit inside the budget by \
             construction: {goodput_p99}"
        );
        assert!(
            goodput_p99 < oblivious_p99,
            "{name}: enforcement must beat the oblivious victim tail: \
             {goodput_p99} vs {oblivious_p99}"
        );
        assert!(
            enforced.tenants[v].outcomes.served > 50,
            "{name}: trough-time victim traffic still serves on time, got {}",
            enforced.tenants[v].outcomes.served
        );
    }

    // Wasted work: the oblivious run does not *measure* waste, but it
    // pays it — every victim completion past the deadline held its board
    // for a client that had already given up. Enforcement's ledger (late
    // serves + aborts + hedge losers) must come in under that silent
    // burn, in board-seconds and in bytes.
    let dead_victims = |report: &agnn_serve::TrafficReport| {
        report
            .requests
            .iter()
            .filter(|r| r.tenant < 2 && r.latency.total() > deadline)
            .map(|r| (r.latency.board_secs(), r.host_bytes + r.switch_bytes))
            .fold((0.0_f64, 0_u64), |(s, b), (ds, db)| (s + ds, b + db))
    };
    let (oblivious_dead_secs, oblivious_dead_bytes) = dead_victims(&oblivious);
    assert!(
        oblivious_dead_secs > 10.0,
        "the oblivious run must burn real board time on dead victim \
         requests, got {oblivious_dead_secs}"
    );
    assert!(
        enforced.wasted_secs < oblivious_dead_secs,
        "enforcement must write off less board time than oblivious \
         serving burned: {} vs {}",
        enforced.wasted_secs,
        oblivious_dead_secs
    );
    assert!(
        enforced.wasted_work_bytes <= oblivious_dead_bytes,
        "enforcement must move no more dead bytes than oblivious serving: \
         {} vs {}",
        enforced.wasted_work_bytes,
        oblivious_dead_bytes
    );

    // Determinism through the deadline + hedge event plumbing.
    let again = simulate(tenants(true), config(HedgeKind::latency()));
    assert_eq!(again.trace_digest, enforced.trace_digest);
    assert_eq!(again, enforced);
}

/// The hedged-dispatch headline at test scale: under `TenantAffine`
/// placement a hot tenant's requests wait for their busy home board —
/// which a co-homed tenant with a *different* bitstream keeps stalling
/// with ICAP reconfigurations — while the second board sits nearly idle.
/// Once a request's wait outruns the tenant's predicted p99, hedged
/// dispatch races a second leg on that idle board (host ingest onto its
/// current bitstream, no reconfiguration) and keeps the faster leg: the
/// hot tenant's tail improves, the loser legs land in the waste ledger,
/// and not one request is lost or double-served.
#[test]
fn hedged_dispatch_cuts_the_tail_of_an_affinity_stalled_tenant() {
    let tenants = || {
        vec![
            TenantSpec::new("hot", Dataset::Movie, 15.0),
            TenantSpec::new("cold", Dataset::StackOverflow, 0.3),
            TenantSpec::new("mixer", Dataset::Arxiv, 1.5),
        ]
    };
    let total = 4_000;
    let mk = |hedge| {
        let cfg = ServeConfig::builder()
            .seed(4_242)
            .total_requests(total)
            .queue_capacity(256)
            .boards(2)
            .placement(PlacementPolicy::TenantAffine)
            .hedge(hedge)
            .build()
            .unwrap();
        simulate(tenants(), cfg)
    };
    let unhedged = mk(HedgeKind::Off);
    let hedged = mk(HedgeKind::Latency { factor: 0.5 });
    assert_eq!(unhedged.completed(), total);
    assert_eq!(hedged.completed(), total, "hedging loses no request");
    assert_eq!(hedged.outcomes().arrival_terminal(), total);
    assert!(
        hedged.hedges() > 100,
        "affinity stalls must trigger real hedging, got {}",
        hedged.hedges()
    );
    assert_eq!(
        hedged.outcomes().hedge_loser,
        hedged.hedges(),
        "every hedge cancels exactly one loser leg"
    );
    let unhedged_p99 = unhedged.tenants[0].latency.quantile(0.99);
    let hedged_p99 = hedged.tenants[0].latency.quantile(0.99);
    assert!(
        hedged_p99 < unhedged_p99,
        "the hedged hot-tenant tail must improve: {hedged_p99} vs {unhedged_p99}"
    );
    assert!(
        hedged.wasted_secs > 0.0,
        "loser legs must land in the waste ledger"
    );
    assert_eq!(unhedged.hedges(), 0);
    assert_eq!(unhedged.wasted_secs, 0.0, "no hedging, no waste");
    // Determinism through the hedge event plumbing.
    let again = mk(HedgeKind::Latency { factor: 0.5 });
    assert_eq!(again.trace_digest, hedged.trace_digest);
    assert_eq!(again, hedged);
}

/// The SLO-gating headline at test scale: on the drift-heavy trace the
/// per-request gain threshold keeps reprogramming the fabric as the
/// dominant tenant rotates, but every tenant is comfortably inside a 1 s
/// p99 budget — so the SLO-aware scheduler stops paying those stalls and
/// the tail *improves* (the stalls were the tail).
#[test]
fn slo_gate_cuts_reconfigs_at_a_no_worse_tail() {
    // Built on the `slo_aware()` preset (SLO gate over the pipelined
    // reconfig-aware deployment); the ungated comparator swaps only the
    // scheduler, so the preset's composition itself is what is pinned.
    let config = |scheduler| {
        ServeConfig::slo_aware()
            .to_builder()
            .seed(7)
            .total_requests(10_000)
            .queue_capacity(512)
            .scheduler(scheduler)
            .build()
            .unwrap()
    };
    let ungated = simulate(drift_heavy_tenants(), config(SchedKind::Fifo));
    let gated = simulate(drift_heavy_tenants(), config(SchedKind::slo_aware()));
    assert!(
        ungated.reconfigs > 100,
        "the drift trace must thrash the ICAP for the gate to matter, saw {}",
        ungated.reconfigs
    );
    assert!(
        gated.reconfigs < ungated.reconfigs / 10,
        "the SLO gate must eliminate most reconfigurations: {} vs {}",
        gated.reconfigs,
        ungated.reconfigs
    );
    let ungated_p99 = ungated.overall_latency().quantile(0.99);
    let gated_p99 = gated.overall_latency().quantile(0.99);
    assert!(
        gated_p99 <= ungated_p99,
        "a no-worse tail is the gate's contract: {gated_p99} vs {ungated_p99}"
    );
    assert_eq!(
        gated.completed() + gated.dropped(),
        ungated.completed() + ungated.dropped(),
        "both face the same offered load"
    );
    // Determinism of the SLO-aware event model.
    let again = simulate(drift_heavy_tenants(), config(SchedKind::slo_aware()));
    assert_eq!(again.trace_digest, gated.trace_digest);
    assert_eq!(again, gated);
}

/// The tentpole headline at test scale: on a memory-pressured pool
/// ([`TenantSpec::taobao_regions`] — graphs outgrow the board DRAM budget,
/// so LRU eviction forces recurring ~128 ms cold re-uploads) the pipelined
/// scheduler hides that ingest behind compute and wins on tail latency
/// without changing the offered load.
#[test]
fn pipelined_mode_beats_serial_under_memory_pressure() {
    let mk = |overlap| {
        let cfg = ServeConfig::reconfig_aware()
            .to_builder()
            .seed(7)
            .total_requests(6_000)
            .queue_capacity(512)
            .boards(4)
            .overlap(overlap)
            .build()
            .unwrap();
        simulate(TenantSpec::taobao_regions(4.0, 900.0), cfg)
    };
    let serial = mk(false);
    let pipelined = mk(true);
    assert_eq!(serial.completed() + serial.dropped(), 6_000);
    assert_eq!(pipelined.completed() + pipelined.dropped(), 6_000);
    assert!(
        serial.evictions() > 100,
        "the working set must thrash DRAM for this trace to mean anything, saw {}",
        serial.evictions()
    );
    assert_eq!(serial.overlap_secs, 0.0);
    assert!(
        pipelined.pipeline_overlap_ratio() > 0.2,
        "a meaningful share of DMA time must hide under compute, got {}",
        pipelined.pipeline_overlap_ratio()
    );
    let serial_p99 = serial.overall_latency().quantile(0.99);
    let pipelined_p99 = pipelined.overall_latency().quantile(0.99);
    assert!(
        pipelined_p99 < serial_p99,
        "pipelining must cut the tail: {pipelined_p99} vs {serial_p99}"
    );
    assert!(pipelined.completed() >= serial.completed());
    // Determinism of the pipelined event model.
    let again = mk(true);
    assert_eq!(again.trace_digest, pipelined.trace_digest);
    assert_eq!(again, pipelined);
}

/// The rehydration headline at test scale: on the memory-pressured trace
/// ([`TenantSpec::taobao_regions`], graphs outgrow board DRAM, LRU
/// eviction forces recurring cold re-uploads), letting evicted tenants
/// pull their graph from a peer board over the PCIe switch instead of the
/// host link must slash host re-upload traffic — the ≥ 40 % acceptance
/// bar, with a wide margin — without hurting the tail.
#[test]
fn rehydration_cuts_host_reuploads_under_memory_pressure() {
    // The CI smoke seed: the gated `migration_drift` scenario replays
    // exactly this comparison's migration side.
    let mk = |migrate| {
        let cfg = ServeConfig::pipelined()
            .to_builder()
            .seed(4_242)
            .total_requests(6_000)
            .queue_capacity(512)
            .boards(4)
            .migrate(migrate)
            .build()
            .unwrap();
        simulate(TenantSpec::taobao_regions(4.0, 900.0), cfg)
    };
    let off = mk(MigratePolicy::Off);
    let rehydrated = mk(MigratePolicy::PeerRehydrate);
    assert_eq!(off.completed() + off.dropped(), 6_000);
    assert_eq!(rehydrated.completed() + rehydrated.dropped(), 6_000);
    assert_eq!(off.migrations(), 0, "Off never consults peers");
    assert_eq!(off.switch_bytes(), 0);
    assert!(
        off.evictions() > 100,
        "the trace must thrash DRAM, saw {} evictions",
        off.evictions()
    );
    assert!(
        rehydrated.migrations() > 100,
        "evicted tenants must rehydrate from peers, saw {}",
        rehydrated.migrations()
    );
    assert!(
        rehydrated.switch_bytes() > 0,
        "rehydration must move bytes over the switch"
    );
    let (host_off, host_mig) = (off.host_upload_bytes(), rehydrated.host_upload_bytes());
    assert!(
        (host_mig as f64) < host_off as f64 * 0.6,
        "migration must cut host re-upload bytes by at least 40 %: {host_mig} vs {host_off}"
    );
    let off_p99 = off.overall_latency().quantile(0.99);
    let mig_p99 = rehydrated.overall_latency().quantile(0.99);
    assert!(
        mig_p99 < off_p99,
        "switch-bandwidth rehydration must also cut the tail here: {mig_p99} vs {off_p99}"
    );
    // Determinism of the migration event model.
    let again = mk(MigratePolicy::PeerRehydrate);
    assert_eq!(again.trace_digest, rehydrated.trace_digest);
    assert_eq!(again, rehydrated);
}

/// The splitting headline at test scale: under `TenantAffine` placement
/// the pressured trace piles each region's diurnal peak onto its home
/// board while other boards idle; `SplitHot` spills the backlog onto an
/// idle board (migrating the graph in over the switch) once the queue
/// outgrows its threshold.
#[test]
fn split_hot_beats_waiting_for_a_busy_home_board() {
    let mk = |migrate| {
        let cfg = ServeConfig::pipelined()
            .to_builder()
            .seed(7)
            .total_requests(6_000)
            .queue_capacity(512)
            .boards(4)
            .placement(PlacementPolicy::TenantAffine)
            .migrate(migrate)
            .build()
            .unwrap();
        simulate(TenantSpec::taobao_regions(4.0, 900.0), cfg)
    };
    let off = mk(MigratePolicy::Off);
    let split = mk(MigratePolicy::split_hot());
    let off_p99 = off.overall_latency().quantile(0.99);
    let split_p99 = split.overall_latency().quantile(0.99);
    assert!(
        split_p99 < off_p99 / 2.0,
        "splitting a hot tenant must slash the waiting tail: {split_p99} vs {off_p99}"
    );
    assert!(
        split.dropped() < off.dropped(),
        "relieved queues must drop less: {} vs {}",
        split.dropped(),
        off.dropped()
    );
    assert!(
        split.migrations() > 0,
        "splits must actually migrate graphs"
    );
    assert!(split.completed() > off.completed());
}

/// The ISSUE's skewed-load comparison: one hot tenant under
/// `BitstreamAffine` placement waits for the single busy board holding
/// its bitstream (the PR 2 restraint that usually pays); `SplitHot` must
/// beat that wait-for-busy-board behavior once the backlog builds.
#[test]
fn split_hot_beats_bitstream_affine_waiting_under_skewed_load() {
    let mk = |migrate| {
        let cfg = ServeConfig::pipelined()
            .to_builder()
            .seed(7)
            .total_requests(10_000)
            .queue_capacity(512)
            .boards(4)
            .placement(PlacementPolicy::BitstreamAffine)
            .migrate(migrate)
            .build()
            .unwrap();
        simulate(TenantSpec::skewed_hotspot(12.0, 900.0), cfg)
    };
    let wait = mk(MigratePolicy::Off);
    let split = mk(MigratePolicy::split_hot());
    let wait_p99 = wait.overall_latency().quantile(0.99);
    let split_p99 = split.overall_latency().quantile(0.99);
    assert!(
        split_p99 < wait_p99 / 2.0,
        "splitting must beat wait-for-busy-board: {split_p99} vs {wait_p99}"
    );
    assert!(
        split.throughput_rps() >= wait.throughput_rps(),
        "borrowed boards cannot lose throughput: {} vs {}",
        split.throughput_rps(),
        wait.throughput_rps()
    );
    assert!(split.dropped() <= wait.dropped());
    assert!(
        split.migrations() > 0,
        "the hot graph must migrate onto borrowed boards"
    );
    assert!(
        split.reconfigs >= wait.reconfigs,
        "splitting pays reconfigurations as its price — that is the trade"
    );
}

/// With a single board there is no peer to pull from, so every migration
/// policy must degenerate to the host-only schedule bit-for-bit.
#[test]
fn migration_without_peers_is_the_host_schedule_bit_for_bit() {
    let mk = |migrate| {
        let cfg = ServeConfig::pipelined()
            .to_builder()
            .seed(11)
            .total_requests(3_000)
            .queue_capacity(512)
            .boards(1)
            .migrate(migrate)
            .build()
            .unwrap();
        simulate(TenantSpec::taobao_regions(4.0, 900.0), cfg)
    };
    let off = mk(MigratePolicy::Off);
    let rehydrated = mk(MigratePolicy::PeerRehydrate);
    assert_eq!(off.trace_digest, rehydrated.trace_digest);
    assert_eq!(off, rehydrated);
    assert_eq!(rehydrated.migrations(), 0);
}

#[test]
fn serving_prices_match_the_runtime_models() {
    // One light-load tenant: per-request latency must be dominated by the
    // same analytic stage seconds the runtime would report, not by queueing.
    let tenants = vec![TenantSpec::new("solo", Dataset::Physics, 0.2)];
    let report = simulate(
        tenants,
        ServeConfig::builder()
            .seed(1)
            .total_requests(50)
            .build()
            .unwrap(),
    );
    assert_eq!(report.completed(), 50);
    let stats = &report.tenants[0];
    // Board time accumulated but light load means no queueing backlog:
    // latency p50 stays close to the mean service time.
    assert!(stats.board_secs > 0.0);
    let mean_service = stats.board_secs / stats.completed as f64;
    let p50 = stats.latency.quantile(0.5);
    assert!(
        p50 < mean_service * 10.0,
        "p50 {p50} should be near service time {mean_service}"
    );
}

/// The cache headline at test scale: on the duplicate-heavy
/// [`TenantSpec::replay_heavy`] trace (static citation graphs, every
/// request of a tenant workload-identical) the result cache serves the
/// replays out of its entries — high hit-rate, a large cut in p99 and in
/// board recompute-seconds — while `CacheKind::Off` pays full price for
/// every duplicate. The cache never invents or loses work: completions
/// plus drops still equal the offered load, and every completion is
/// classified exactly once.
#[test]
fn result_cache_cuts_p99_and_recompute_on_the_replay_heavy_trace() {
    let total = 6_000;
    let mk = |cache| {
        let cfg = ServeConfig::reconfig_aware()
            .to_builder()
            .seed(21)
            .total_requests(total)
            .queue_capacity(256)
            .cache(cache)
            .build()
            .unwrap();
        simulate(TenantSpec::replay_heavy(3.0), cfg)
    };
    let off = mk(CacheKind::Off);
    let cached = mk(CacheKind::delta());
    assert_eq!(off.completed() + off.dropped(), total);
    assert_eq!(cached.completed() + cached.dropped(), total);
    assert_eq!(
        cached.cache.hits
            + cached.cache.partial_hits
            + cached.cache.misses
            + cached.cache.coalesced,
        cached.completed(),
        "every completion is classified exactly once"
    );
    assert!(
        cached.cache.hit_rate() > 0.5,
        "static replays must mostly hit: rate {}",
        cached.cache.hit_rate()
    );
    assert!(
        cached.cache.recompute_secs_saved > 0.0,
        "hits must bank the recompute they skipped"
    );
    let off_p99 = off.overall_latency().quantile(0.99);
    let cached_p99 = cached.overall_latency().quantile(0.99);
    assert!(
        cached_p99 < off_p99 * 0.7,
        "the cache must cut p99 by at least 30 % here: {cached_p99} vs {off_p99}"
    );
    // Determinism through the cache event plumbing.
    let again = mk(CacheKind::delta());
    assert_eq!(again.trace_digest, cached.trace_digest);
    assert_eq!(again, cached);
}

/// Invalidation does its job on the drift-heavy migration shape: the
/// Taobao regions all grow at the Table II daily rate, so with
/// per-request-scale drift buckets and a tight delta budget every bucket
/// transition burns the accumulated delta past the entry's allowance —
/// the hit-rate collapses toward zero and the invalidation counter
/// records the churn. No stale entry survives to be served (the
/// no-stale proptest bounds the fraction; this pins the direction the
/// headline claims).
#[test]
fn drift_drives_the_hit_rate_toward_zero() {
    let report = simulate(
        TenantSpec::taobao_regions(4.0, 900.0),
        ServeConfig::reconfig_aware()
            .to_builder()
            .seed(21)
            .total_requests(4_000)
            .queue_capacity(256)
            // Buckets advance faster than any tenant re-offers a request,
            // and the budget is below one bucket's delta bytes, so nearly
            // every lookup sees a graph drifted past its entry's budget.
            .drift_step_secs(0.25)
            .cache(CacheKind::Delta {
                max_delta_frac: 1e-9,
            })
            .overlap(true)
            .build()
            .unwrap(),
    );
    assert!(
        report.cache.hit_rate() < 0.05,
        "a tight budget under drift must kill nearly every entry: rate {}",
        report.cache.hit_rate()
    );
    assert!(
        report.cache.invalidations > 0,
        "the churn must be visible as invalidations"
    );
}

/// Hit-under-miss coalescing preserves the served-request multiset even
/// when the admission queue is drop-tight: a parked duplicate completes
/// off its primary's `ServiceDone` without ever occupying a queue slot,
/// so coalesced + completed + dropped still accounts for every arrival,
/// per tenant, and the coalesced waiters' latencies land in the same
/// histograms as everyone else's.
#[test]
fn coalescing_preserves_the_served_multiset_under_drops() {
    let total = 3_000;
    let report = simulate(
        TenantSpec::taobao_regions(4.0, 900.0),
        ServeConfig::builder()
            .seed(33)
            .total_requests(total)
            // Tight queue + per-request-scale drift buckets: every bucket
            // spawns a fresh primary (Exact entries die on the next
            // bucket) so the 4-deep queue overflows, while same-bucket
            // duplicates keep parking on their in-flight primary.
            .queue_capacity(4)
            .drift_step_secs(0.5)
            .cache(CacheKind::Exact)
            .build()
            .unwrap(),
    );
    assert_eq!(
        report.completed() + report.dropped(),
        total,
        "arrivals partition into completions and drops"
    );
    for t in &report.tenants {
        assert_eq!(
            t.completed + t.dropped,
            t.cache_hits + t.cache_partial_hits + t.cache_misses + t.cache_coalesced + t.dropped,
            "per-tenant: every non-dropped arrival is classified once"
        );
        assert_eq!(
            t.latency.count(),
            t.completed,
            "every completion (waiters included) lands in the histogram"
        );
    }
    assert!(
        report.cache.coalesced > 0,
        "the replay trace must actually coalesce duplicates"
    );
    assert!(
        report.dropped() > 0,
        "the 4-deep queue must drop under this load"
    );
}

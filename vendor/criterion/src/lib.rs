//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the benchmarking API surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple fixed-sample mean over
//! wall-clock iterations — adequate for relative comparisons, without real
//! criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `function_id` under `parameter`.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, once per sample plus one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = u64::from(self.samples);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1) as u32;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Prints the group's trailing separator.
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!("{}/{:<40} {:>12.3?}/iter", self.name, id, mean);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Prints the final summary (no-op in the vendored driver).
    pub fn final_summary(&mut self) {}
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

//! Offline stand-in for the `fxhash` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the fxhash 0.2 API the workspace uses:
//! [`FxHasher`], [`FxBuildHasher`] and the [`FxHashMap`] / [`FxHashSet`]
//! aliases.
//!
//! Fx is the multiply-and-rotate hash rustc uses for its interner tables:
//! for the small fixed-width keys on the simulator's hot path (packed
//! `(Workload, HwConfig)` tuples — a handful of `u64` words) it hashes in
//! a few cycles per word where SipHash-1-3 burns dozens, and — unlike
//! `std`'s `RandomState` — it is **deterministic across processes**: no
//! per-process seed, so a table built by replaying the same simulation
//! always hashes (and therefore iterates) identically. Maps on the
//! simulator hot path must still never let iteration order reach the
//! schedule; determinism here is defense in depth, not a license.
//!
//! Fx is not DoS-resistant (no key material). Every map in this workspace
//! is keyed by simulator-internal values, never by untrusted input.
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`HashMap`] using [`FxHasher`] (deterministic, no per-process seed).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`] (deterministic, no per-process seed).
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s; `Default` so maps can be created with
/// `FxHashMap::default()`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Firefox/rustc "Fx" hash: per input word, xor into the state,
/// rotate, and multiply by a constant with good bit dispersion. Not
/// cryptographic, not seeded — fast and deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The dispersion constant: `2^64 / φ`, the 64-bit Fibonacci multiplier.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
            // Fold the length in so "ab" + "c" and "a" + "bc" (which pad
            // to the same words) cannot collide trivially.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes `v` with [`FxHasher`] (the crate's convenience entry point).
pub fn hash64<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_input_sensitive() {
        assert_eq!(hash64(&(1u64, 2u64)), hash64(&(1u64, 2u64)));
        assert_ne!(hash64(&(1u64, 2u64)), hash64(&(2u64, 1u64)));
        assert_ne!(hash64("abc"), hash64("abd"));
        assert_ne!(hash64(&[1u8, 2, 3][..]), hash64(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn map_and_set_aliases_work_and_need_no_seed() {
        let mut m: FxHashMap<(u64, u32), f64> = FxHashMap::default();
        m.insert((7, 3), 0.5);
        m.insert((7, 4), 1.5);
        assert_eq!(m.get(&(7, 3)), Some(&0.5));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn spread_is_sane_over_sequential_keys() {
        // Sequential integers must not pile into a few buckets: check
        // that the low bits (what HashMap indexes by) take many values.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0u64..256 {
            low_bits.insert(hash64(&i) & 0xFF);
        }
        assert!(low_bits.len() > 128, "got {} distinct", low_bits.len());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! [`any`], integer-range and tuple strategies, `prop_map`,
//! [`collection::vec`] / [`collection::hash_set`] and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-case RNG, so test
//! runs are reproducible; there is no shrinking — a failing case panics with
//! the ordinary assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for one `(property, case)` pair. Deterministic so failures
    /// reproduce; different per case so cases explore different inputs.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0xA0_707E57 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. The vendored analog of proptest's `Strategy`, with
/// direct generation instead of value trees (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.rng().gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.rng().gen::<u32>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `HashSet` of `element` values with a *target* size drawn from
    /// `size`; duplicates collapse, as in real proptest.
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    /// The strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strategy,)+);
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(case);
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u32..100, crate::collection::vec(any::<u64>(), 0..10));
        let a = s.generate(&mut crate::TestRng::for_case(3));
        let b = s.generate(&mut crate::TestRng::for_case(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(x in 0u32..10, mut v in crate::collection::vec(0u64..5, 0..4)) {
            prop_assert!(x < 10);
            v.push(0);
            prop_assert!(v.len() <= 4);
        }

        #[test]
        fn prop_map_composes(y in (0usize..5, 0usize..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(y <= 8);
        }
    }
}

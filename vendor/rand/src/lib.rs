//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` over the integer and
//! float range types that appear in the codebase.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for the workspace's synthetic-graph
//! generators and samplers. Streams differ from the real `rand::StdRng`
//! (which is ChaCha12); nothing in the workspace depends on the exact
//! stream, only on determinism under a fixed seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`'s uniform standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw via 128-bit multiply (Lemire reduction).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        self.start() + f64::sample_standard(rng) * (self.end() - self.start())
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        self.start() + f32::sample_standard(rng) * (self.end() - self.start())
    }
}

/// The user-facing extension methods, mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}

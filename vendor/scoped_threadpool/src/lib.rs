//! Offline stand-in for the `scoped_threadpool` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the scoped_threadpool 0.1 API the workspace
//! uses: [`Pool::new`], [`Pool::thread_count`] and [`Pool::scoped`] with
//! [`Scope::execute`]. A [`Pool`] is a *bounded* pool of `threads` worker
//! OS threads; jobs submitted through [`Scope::execute`] may borrow stack
//! data of the enclosing frame (the `'scope` lifetime), and
//! [`Pool::scoped`] does not return until every submitted job has run —
//! the same structured-concurrency contract as the real crate.
//!
//! Unlike the real crate (which parks persistent workers between `scoped`
//! calls), this stand-in spawns its workers per `scoped` call via
//! [`std::thread::scope`] — the 2021-era std primitive makes the unsafe
//! lifetime juggling the original needed obsolete, and pool users in this
//! workspace run second-scale simulation batches for which a few
//! microseconds of thread spawn are noise. Jobs are distributed from one
//! shared FIFO injector that idle workers pull from (work-sharing: a
//! long-running job never blocks the queue behind it, the other workers
//! keep draining), so the *completion order* of jobs is nondeterministic —
//! callers that need deterministic output must merge results by job
//! index, as [`agnn_serve`'s `par` module](../agnn_serve/par/index.html)
//! does.
//!
//! # Example
//!
//! ```
//! use scoped_threadpool::Pool;
//!
//! let mut results = vec![0u64; 8];
//! let mut pool = Pool::new(4);
//! pool.scoped(|scope| {
//!     for (i, slot) in results.iter_mut().enumerate() {
//!         scope.execute(move || *slot = (i as u64) * 2);
//!     }
//! });
//! assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded pool of worker OS threads executing scoped jobs.
///
/// The pool itself is just the configured width; threads are spawned
/// inside each [`Pool::scoped`] call (see the crate docs).
#[derive(Debug)]
pub struct Pool {
    threads: u32,
}

/// A job: a boxed closure that may borrow `'scope` data.
type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The shared injector queue one `scoped` call's workers drain.
struct Injector<'scope> {
    state: Mutex<InjectorState<'scope>>,
    /// Signals "a job was pushed" and "the queue was closed".
    work: Condvar,
}

struct InjectorState<'scope> {
    jobs: VecDeque<Job<'scope>>,
    /// Set once the scope closure returned (or unwound): workers drain
    /// the remaining queue and exit instead of parking forever.
    closed: bool,
}

impl<'scope> Injector<'scope> {
    /// Worker loop: pull jobs until the queue is closed *and* empty.
    fn drain(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break Some(job);
                    }
                    if st.closed {
                        break None;
                    }
                    st = self.work.wait(st).unwrap();
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }

    /// Closes the queue and wakes every parked worker. Idempotent.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.work.notify_all();
    }
}

/// Handle through which jobs are submitted to the enclosing
/// [`Pool::scoped`] call.
pub struct Scope<'pool, 'scope> {
    injector: &'pool Injector<'scope>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submits `job` to the pool. The job may borrow data living outside
    /// the `scoped` call (the `'scope` lifetime); it is guaranteed to
    /// have finished by the time [`Pool::scoped`] returns.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.injector
            .state
            .lock()
            .unwrap()
            .jobs
            .push_back(Box::new(job));
        self.injector.work.notify_one();
    }
}

/// Closes the injector even if the scope closure unwinds — otherwise the
/// workers would park forever and `std::thread::scope`'s implicit join
/// would deadlock the panic.
struct CloseOnDrop<'a, 'scope>(&'a Injector<'scope>);

impl Drop for CloseOnDrop<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Pool {
    /// Creates a pool `threads` workers wide.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: u32) -> Pool {
        assert!(threads > 0, "a thread pool needs at least one thread");
        Pool { threads }
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Runs `f` with a [`Scope`] for submitting jobs, blocking until both
    /// `f` and every submitted job have completed. Jobs run on the pool's
    /// worker threads; panics in a job propagate when the internal
    /// [`std::thread::scope`] joins.
    pub fn scoped<'scope, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'scope>) -> R,
    {
        let injector = Injector {
            state: Mutex::new(InjectorState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
        };
        std::thread::scope(|ts| {
            for _ in 0..self.threads {
                ts.spawn(|| injector.drain());
            }
            let _close = CloseOnDrop(&injector);
            f(&Scope {
                injector: &injector,
            })
            // `_close` drops here: the queue closes, the workers drain
            // what remains and exit, and `std::thread::scope` joins them
            // before `scoped` returns.
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_job_runs_exactly_once_and_results_land_in_order() {
        let mut results = vec![0u64; 100];
        let mut pool = Pool::new(8);
        pool.scoped(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.execute(move || *slot = i as u64 + 1);
            }
        });
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn jobs_actually_run_on_worker_threads() {
        let main_id = std::thread::current().id();
        let off_main = AtomicU64::new(0);
        let mut pool = Pool::new(2);
        pool.scoped(|scope| {
            for _ in 0..16 {
                let off_main = &off_main;
                scope.execute(move || {
                    if std::thread::current().id() != main_id {
                        off_main.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(off_main.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn a_width_one_pool_serializes() {
        // One worker: jobs run one at a time, in submission order.
        let log: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let mut pool = Pool::new(1);
        pool.scoped(|scope| {
            for i in 0..32 {
                let log = &log;
                scope.execute(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(log.into_inner().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_returns_the_closure_value() {
        let mut pool = Pool::new(3);
        let n = pool.scoped(|scope| {
            scope.execute(|| {});
            41 + 1
        });
        assert_eq!(n, 42);
        assert_eq!(pool.thread_count(), 3);
    }

    #[test]
    fn an_empty_scope_terminates() {
        let mut pool = Pool::new(4);
        pool.scoped(|_scope| {});
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_width_is_rejected() {
        let _ = Pool::new(0);
    }
}
